package figures

import (
	"fmt"

	"picpredict"
)

// Fig1aResult summarises the particle-distribution heat map.
type Fig1aResult struct {
	Ranks       int
	Peak        int64
	IdlePercent float64 // run-average idle processors
	EverPercent float64 // processors ever holding a particle
}

// Fig1a renders the heat map of particle distribution across processors
// under element-based mapping (paper: 4096 processors on Vulcan; white
// patches are processors with no particles).
func (r *Runner) Fig1a(ranks int) (*Fig1aResult, error) {
	if ranks <= 0 {
		ranks = 4096
	}
	if _, err := r.Trace(); err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Fig 1(a): particle-distribution heat map, element mapping, R=%d ==\n", ranks)
	wl, err := r.workload(picpredict.WorkloadOptions{Ranks: ranks, Mapping: picpredict.MappingElement})
	if err != nil {
		return nil, err
	}
	if err := wl.RenderHeatmap(r.out, 32, 72); err != nil {
		return nil, err
	}
	u := wl.Utilization()
	res := &Fig1aResult{
		Ranks:       ranks,
		Peak:        wl.Peak(),
		IdlePercent: 100 * (1 - u.Mean),
		EverPercent: 100 * u.Ever,
	}
	fmt.Fprintf(r.out, "peak particles/processor: %d; idle processors (run average): %.1f%%\n", res.Peak, res.IdlePercent)
	fmt.Fprintf(r.out, "paper: white patches dominate — 81%% of processors idle on average\n")
	return res, nil
}

// Fig1bRow is one processor configuration of Fig 1(b).
type Fig1bRow struct {
	Ranks          int
	MeanNonZero    float64
	MeanNonZeroPct float64
	IdlePct        float64
}

// Fig1b reports, per processor configuration, how many processors hold a
// non-zero particle workload under element mapping, and the run-average
// idle percentage (paper: ≈81 % idle on average).
func (r *Runner) Fig1b(rankSets []int) ([]Fig1bRow, error) {
	if len(rankSets) == 0 {
		rankSets = []int{512, 1024, 2048, 4096}
	}
	if _, err := r.Trace(); err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Fig 1(b): processors with non-zero particles, element mapping ==\n")
	fmt.Fprintf(r.out, "%8s %18s %12s %10s\n", "R", "busy procs (mean)", "busy %", "idle %")
	var rows []Fig1bRow
	var idleSum float64
	for _, ranks := range rankSets {
		wl, err := r.workload(picpredict.WorkloadOptions{Ranks: ranks, Mapping: picpredict.MappingElement})
		if err != nil {
			return nil, err
		}
		nz := wl.NonZeroRanksPerFrame()
		sum := 0.0
		for _, n := range nz {
			sum += float64(n)
		}
		mean := sum / float64(len(nz))
		row := Fig1bRow{
			Ranks:          ranks,
			MeanNonZero:    mean,
			MeanNonZeroPct: 100 * mean / float64(ranks),
			IdlePct:        100 * (1 - mean/float64(ranks)),
		}
		rows = append(rows, row)
		idleSum += row.IdlePct
		fmt.Fprintf(r.out, "%8d %18.1f %11.2f%% %9.2f%%\n", row.Ranks, row.MeanNonZero, row.MeanNonZeroPct, row.IdlePct)
	}
	fmt.Fprintf(r.out, "average idle: %.1f%% (paper: 81%% on average)\n", idleSum/float64(len(rows)))
	return rows, nil
}
