package figures

import (
	"fmt"

	"picpredict"
)

// Fig5Result holds the peak-workload series per processor configuration.
type Fig5Result struct {
	Iterations []int
	// PeakByRanks[R][k] is the peak particles/processor at interval k for
	// processor count R.
	PeakByRanks map[int][]int64
	// EarlyEqualAcrossRanks reports whether the early-phase peaks are
	// identical for every R (the bin-threshold plateau the paper found for
	// the first 7800 iterations).
	EarlyEqualAcrossRanks bool
	// DipAfterFirstRanks reports whether, late in the run, the smallest R
	// shows a strictly higher peak than the larger ones (the dip when R
	// crosses the maximum bin count).
	DipAfterFirstRanks bool
}

// Fig5 reproduces the scalability-prediction figure: the maximum number of
// particles per processor over the run for each processor configuration,
// under bin-based mapping with the projection-filter bin-size threshold.
func (r *Runner) Fig5() (*Fig5Result, error) {
	tr, err := r.Trace()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Fig 5: peak particles/processor vs iteration, bin mapping ==\n")
	res := &Fig5Result{
		Iterations:  tr.Iterations(),
		PeakByRanks: make(map[int][]int64, len(r.cfg.Ranks)),
	}
	for _, ranks := range r.cfg.Ranks {
		wl, err := r.workload(picpredict.WorkloadOptions{
			Ranks:        ranks,
			Mapping:      picpredict.MappingBin,
			FilterRadius: r.cfg.Spec.FilterRadius(),
		})
		if err != nil {
			return nil, err
		}
		res.PeakByRanks[ranks] = wl.PeakPerFrame()
	}

	fmt.Fprintf(r.out, "%10s", "iteration")
	for _, ranks := range r.cfg.Ranks {
		fmt.Fprintf(r.out, " %9s", fmt.Sprintf("R=%d", ranks))
	}
	fmt.Fprintln(r.out)
	for k, it := range res.Iterations {
		fmt.Fprintf(r.out, "%10d", it)
		for _, ranks := range r.cfg.Ranks {
			fmt.Fprintf(r.out, " %9d", res.PeakByRanks[ranks][k])
		}
		fmt.Fprintln(r.out)
	}

	// Shape checks: early plateau across all R, late dip beyond the first R.
	early := len(res.Iterations) / 4
	if early < 1 {
		early = 1
	}
	res.EarlyEqualAcrossRanks = true
	for k := 0; k < early; k++ {
		first := res.PeakByRanks[r.cfg.Ranks[0]][k]
		for _, ranks := range r.cfg.Ranks[1:] {
			if res.PeakByRanks[ranks][k] != first {
				res.EarlyEqualAcrossRanks = false
			}
		}
	}
	last := len(res.Iterations) - 1
	res.DipAfterFirstRanks = true
	firstPeak := res.PeakByRanks[r.cfg.Ranks[0]][last]
	for _, ranks := range r.cfg.Ranks[1:] {
		if res.PeakByRanks[ranks][last] >= firstPeak {
			res.DipAfterFirstRanks = false
		}
	}
	fmt.Fprintf(r.out, "early peaks identical across R: %v (paper: yes, bin-size threshold caps bins below R)\n",
		res.EarlyEqualAcrossRanks)
	fmt.Fprintf(r.out, "late dip beyond R=%d: %v (paper: yes, bins exceed %d late in the run)\n",
		r.cfg.Ranks[0], res.DipAfterFirstRanks, r.cfg.Ranks[0])
	return res, nil
}

// Fig6Result holds the bin-growth series.
type Fig6Result struct {
	Iterations []int
	Bins       []int
	MaxBins    int
}

// Fig6 reproduces the bin-growth figure: the number of particle bins
// generated per interval with the processor-count limit relaxed. The
// maximum is the upper limit on useful processor count — the optimal
// processor count for the problem (paper: 1104).
func (r *Runner) Fig6() (*Fig6Result, error) {
	tr, err := r.Trace()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Fig 6: particle bins over the run (relaxed processor limit) ==\n")
	wl, err := r.workload(picpredict.WorkloadOptions{
		Ranks:        tr.NumParticles(), // effectively unbounded
		Mapping:      picpredict.MappingBin,
		FilterRadius: r.cfg.Spec.FilterRadius(),
		RelaxedBins:  true,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Iterations: tr.Iterations(), Bins: wl.BinsPerFrame(), MaxBins: wl.MaxBins()}
	fmt.Fprintf(r.out, "%10s %8s\n", "iteration", "bins")
	for k, it := range res.Iterations {
		fmt.Fprintf(r.out, "%10d %8d\n", it, res.Bins[k])
	}
	fmt.Fprintf(r.out, "max bins = optimal processor count: %d (paper: 1104)\n", res.MaxBins)
	return res, nil
}
