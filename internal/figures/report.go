package figures

import (
	"fmt"
	"io"
	"sort"
	"time"

	"picpredict"
)

// Report runs every experiment and writes a self-contained markdown report
// with paper-vs-measured tables — a regenerated EXPERIMENTS.md for the
// configured scenario. The runner's text output still streams to its
// regular writer; the report is structured data only.
func (r *Runner) Report(w io.Writer) error {
	tr, err := r.Trace()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Experiment report — %s\n\n", r.cfg.Spec.Name())
	fmt.Fprintf(w, "Generated %s. Scenario: %d particles, %d elements, %d frames; processor configurations %v.\n\n",
		time.Now().Format(time.RFC3339), tr.NumParticles(), r.cfg.Spec.NumElements(), tr.Frames(), r.cfg.Ranks)

	f1a, err := r.Fig1a(4096)
	if err != nil {
		return err
	}
	f1b, err := r.Fig1b(nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Fig 1 — element-mapping idleness\n\n")
	fmt.Fprintf(w, "| metric | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(w, "| idle processors, run average | 81%% | %.1f%% (R=%d) |\n", f1a.IdlePercent, f1a.Ranks)
	fmt.Fprintf(w, "| peak particles/processor | — | %d |\n\n", f1a.Peak)
	fmt.Fprintf(w, "| R | busy procs (mean) | idle %% |\n|---|---|---|\n")
	for _, row := range f1b {
		fmt.Fprintf(w, "| %d | %.1f | %.2f%% |\n", row.Ranks, row.MeanNonZero, row.IdlePct)
	}
	fmt.Fprintln(w)

	f5, err := r.Fig5()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Fig 5 — peak particles/processor vs iteration (bin mapping)\n\n")
	fmt.Fprintf(w, "| claim | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(w, "| early peaks identical across R | yes | %v |\n", f5.EarlyEqualAcrossRanks)
	fmt.Fprintf(w, "| dip beyond R=%d late in the run | yes | %v |\n\n", r.cfg.Ranks[0], f5.DipAfterFirstRanks)
	fmt.Fprintf(w, "| iteration |")
	ranksSorted := append([]int(nil), r.cfg.Ranks...)
	sort.Ints(ranksSorted)
	for _, ranks := range ranksSorted {
		fmt.Fprintf(w, " R=%d |", ranks)
	}
	fmt.Fprintf(w, "\n|---|")
	for range ranksSorted {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for k, it := range f5.Iterations {
		fmt.Fprintf(w, "| %d |", it)
		for _, ranks := range ranksSorted {
			fmt.Fprintf(w, " %d |", f5.PeakByRanks[ranks][k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	f6, err := r.Fig6()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Fig 6 — bin growth (relaxed)\n\n")
	fmt.Fprintf(w, "| metric | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(w, "| max bins = optimal processor count | 1104 | %d |\n\n", f6.MaxBins)

	f7, err := r.Fig7()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Fig 7 — kernel-model MAPE\n\n")
	fmt.Fprintf(w, "| metric | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(w, "| average MAPE | 8.42%% | %.2f%% |\n", f7.Mean)
	fmt.Fprintf(w, "| peak MAPE | 17.7%% | %.2f%% |\n\n", f7.Peak)
	fmt.Fprintf(w, "| R |")
	for _, n := range picpredict.KernelNames() {
		fmt.Fprintf(w, " %s |", n)
	}
	fmt.Fprintf(w, "\n|---|")
	for range picpredict.KernelNames() {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for _, ranks := range ranksSorted {
		fmt.Fprintf(w, "| %d |", ranks)
		for _, n := range picpredict.KernelNames() {
			fmt.Fprintf(w, " %.2f%% |", f7.MAPE[ranks][n])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	f8, err := r.Fig8()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Fig 8 — element vs bin peak workload\n\n")
	fmt.Fprintf(w, "| R | element peak | bin peak | ratio |\n|---|---|---|---|\n")
	for _, row := range f8 {
		fmt.Fprintf(w, "| %d | %d | %d | %.1f× |\n", row.Ranks, row.ElementPeak, row.BinPeak, row.Ratio)
	}
	fmt.Fprintf(w, "\nPaper: ≈two orders of magnitude at the low configurations; the ratio narrows as R grows.\n\n")

	f9, err := r.Fig9()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Fig 9 — resource utilization (R=%d)\n\n", f9.Ranks)
	fmt.Fprintf(w, "| mapping | paper RU | measured RU (mean) | busy procs |\n|---|---|---|---|\n")
	fmt.Fprintf(w, "| element | 0.68%% | %.2f%% | %d |\n", f9.ElementMeanPct, f9.ElementBusy)
	fmt.Fprintf(w, "| bin | 56.13%% | %.2f%% | %d |\n\n", f9.BinMeanPct, f9.BinBusy)

	f10a, err := r.Fig10a(nil)
	if err != nil {
		return err
	}
	f10b, err := r.Fig10b(nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Fig 10 — projection-filter study\n\n")
	fmt.Fprintf(w, "| filter | max bins | peak ghosts | create_ghost_particles time |\n|---|---|---|---|\n")
	for i := range f10a {
		fmt.Fprintf(w, "| %.4g | %d | %d | %.3g s |\n",
			f10a[i].Filter, f10a[i].MaxBins, f10b[i].PeakGhosts, f10b[i].KernelTime)
	}
	fmt.Fprintln(w)

	sim, err := r.Simulate()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## End-to-end simulation\n\n")
	fmt.Fprintf(w, "| R | predicted total (s) | compute (s) | comm (s) | error vs testbed |\n|---|---|---|---|---|\n")
	for _, row := range sim {
		fmt.Fprintf(w, "| %d | %.4g | %.4g | %.4g | %.2f%% |\n", row.Ranks, row.Total, row.Compute, row.Comm, row.ErrPct)
	}
	fmt.Fprintf(w, "\nPaper: scaling beyond the bin plateau does not improve the particle solver.\n")
	return nil
}
