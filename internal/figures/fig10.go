package figures

import (
	"fmt"

	"picpredict"
)

// Fig10aRow is one projection-filter setting of Fig 10(a).
type Fig10aRow struct {
	// Filter is the projection filter size (absolute length).
	Filter float64
	// MaxBins is the maximum bin count generated during the run with the
	// processor limit relaxed.
	MaxBins int
}

// Fig10a reproduces the filter/bin-count trade-off: the maximum number of
// particle bins for different projection filter sizes. The filter is the
// threshold bin size, so smaller filters allow more bins — a higher
// optimal processor count (paper Fig 10a).
func (r *Runner) Fig10a(filters []float64) ([]Fig10aRow, error) {
	base := r.cfg.Spec.FilterRadius()
	if len(filters) == 0 {
		filters = []float64{0.5 * base, base, 2 * base, 3 * base, 4 * base}
	}
	tr, err := r.Trace()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Fig 10(a): max particle bins vs projection filter size ==\n")
	fmt.Fprintf(r.out, "%12s %10s\n", "filter", "max bins")
	var rows []Fig10aRow
	for _, f := range filters {
		wl, err := r.workload(picpredict.WorkloadOptions{
			Ranks:        tr.NumParticles(),
			Mapping:      picpredict.MappingBin,
			FilterRadius: f,
			RelaxedBins:  true,
		})
		if err != nil {
			return nil, err
		}
		row := Fig10aRow{Filter: f, MaxBins: wl.MaxBins()}
		rows = append(rows, row)
		fmt.Fprintf(r.out, "%12.4g %10d\n", row.Filter, row.MaxBins)
	}
	fmt.Fprintf(r.out, "paper: smaller filters -> lower threshold -> more bins\n")
	return rows, nil
}

// Fig10bRow is one projection-filter setting of Fig 10(b).
type Fig10bRow struct {
	// Filter is the projection filter size (absolute length), and
	// FilterElems the same in element widths (the model's unit).
	Filter, FilterElems float64
	// PeakGhosts is the largest per-rank ghost count the filter induces.
	PeakGhosts int64
	// KernelTime is the predicted create_ghost_particles execution time at
	// the peak-workload rank.
	KernelTime float64
}

// Fig10b reproduces the create_ghost_particles cost figure: the kernel's
// execution time for different projection filter sizes, evaluated at the
// peak-workload processor (paper Fig 10b: significant growth at larger
// filters).
func (r *Runner) Fig10b(filters []float64) ([]Fig10bRow, error) {
	base := r.cfg.Spec.FilterRadius()
	if len(filters) == 0 {
		filters = []float64{0.5 * base, base, 2 * base, 3 * base, 4 * base}
	}
	if _, err := r.Trace(); err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Fig 10(b): create_ghost_particles time vs projection filter size ==\n")
	fmt.Fprintf(r.out, "%12s %12s %14s\n", "filter", "peak ghosts", "kernel time")
	ms, err := r.Models()
	if err != nil {
		return nil, err
	}
	ranks := r.cfg.Ranks[0]
	elemWidth := base / r.cfg.Spec.FilterInElements() // domain width of one element
	var rows []Fig10bRow
	for _, f := range filters {
		wl, err := r.workload(picpredict.WorkloadOptions{
			Ranks:        ranks,
			Mapping:      picpredict.MappingBin,
			FilterRadius: f,
		})
		if err != nil {
			return nil, err
		}
		// Peak-workload rank: evaluate the kernel model at its Np/Ngp.
		var peakNp, peakNgp int64
		for k := 0; k < wl.Frames(); k++ {
			for rank := 0; rank < wl.Ranks(); rank++ {
				if np := wl.At(rank, k); np > peakNp {
					peakNp, peakNgp = np, wl.GhostAt(rank, k)
				}
			}
		}
		fElems := f / elemWidth
		t, err := ms.Predict("create_ghost_particles",
			float64(peakNp), float64(peakNgp),
			float64(r.cfg.Spec.NumElements())/float64(ranks),
			float64(r.cfg.Spec.GridN()), fElems)
		if err != nil {
			return nil, err
		}
		row := Fig10bRow{Filter: f, FilterElems: fElems, PeakGhosts: wl.GhostPeak(), KernelTime: t}
		rows = append(rows, row)
		fmt.Fprintf(r.out, "%12.4g %12d %13.3gs\n", row.Filter, row.PeakGhosts, row.KernelTime)
	}
	fmt.Fprintf(r.out, "paper: significant execution-time increase for larger filter sizes\n")
	return rows, nil
}
