// Package figures regenerates every table and figure of the paper's
// evaluation (§IV). Each Fig* method prints the rows/series the paper
// reports and returns the headline numbers so tests and benchmarks can
// assert the reproduced *shape*: who wins, by what order of magnitude, and
// where the crossovers fall. cmd/experiments is a thin flag wrapper around
// this package; the root bench harness drives the same code.
package figures

import (
	"fmt"
	"io"
	"time"

	"picpredict"
)

// Config parameterises a reproduction run.
type Config struct {
	// Spec is the case-study scenario; zero value means the experiment-
	// scale Hele-Shaw study.
	Spec picpredict.Scenario
	// Ranks are the processor configurations; default {1044, 2088, 4176,
	// 8352} (§IV-B).
	Ranks []int
	// Noise is the synthetic-testbed relative noise (default 0.105,
	// calibrated to the paper's ≈8.4 % MAPE regime).
	Noise float64
	// Seed drives testbed noise during evaluation.
	Seed int64
	// FastModels shrinks symbolic-regression budgets (smoke tests only).
	FastModels bool
}

func (c Config) withDefaults() Config {
	if c.Spec == (picpredict.Scenario{}) {
		c.Spec = picpredict.HeleShaw()
	}
	if len(c.Ranks) == 0 {
		c.Ranks = []int{1044, 2088, 4176, 8352}
	}
	if c.Noise == 0 {
		c.Noise = 0.105
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// Runner executes figures against one scenario run, caching the trace,
// workloads, and trained models across figures.
type Runner struct {
	cfg Config
	out io.Writer

	trace     *picpredict.Trace
	traceTime time.Duration
	models    *picpredict.Models
	workloads map[workloadKey]*picpredict.Workload
}

type workloadKey struct {
	ranks     int
	mapping   picpredict.MappingKind
	filter    float64
	relaxed   bool
	midpoint  bool
	rebalance string
}

// NewRunner prepares a runner writing its tables to out.
func NewRunner(cfg Config, out io.Writer) *Runner {
	return &Runner{cfg: cfg.withDefaults(), out: out, workloads: make(map[workloadKey]*picpredict.Workload)}
}

// Trace runs the PIC application once (cached) and returns its trace.
func (r *Runner) Trace() (*picpredict.Trace, error) {
	if r.trace == nil {
		start := time.Now()
		tr, err := r.cfg.Spec.Run()
		if err != nil {
			return nil, err
		}
		r.trace = tr
		r.traceTime = time.Since(start)
		fmt.Fprintf(r.out, "# scenario %s: %d particles, %d elements, %d frames (app run %.1fs)\n",
			r.cfg.Spec.Name(), tr.NumParticles(), r.cfg.Spec.NumElements(), tr.Frames(), r.traceTime.Seconds())
	}
	return r.trace, nil
}

// workload returns (cached) the workload for the given options.
func (r *Runner) workload(opts picpredict.WorkloadOptions) (*picpredict.Workload, error) {
	key := workloadKey{
		ranks: opts.Ranks, mapping: opts.Mapping, filter: opts.FilterRadius,
		relaxed: opts.RelaxedBins, midpoint: opts.MidpointSplit,
		rebalance: opts.Rebalance,
	}
	if wl, ok := r.workloads[key]; ok {
		return wl, nil
	}
	tr, err := r.Trace()
	if err != nil {
		return nil, err
	}
	wl, err := tr.GenerateWorkload(opts)
	if err != nil {
		return nil, err
	}
	r.workloads[key] = wl
	return wl, nil
}

// ClearWorkloadCache drops cached workloads so the next figure regenerates
// them — used by the benchmarks to time real workload generation while
// keeping the (expensive, deterministic) trace and models cached.
func (r *Runner) ClearWorkloadCache() { clear(r.workloads) }

// Models trains (cached) the kernel performance models.
func (r *Runner) Models() (picpredict.Models, error) {
	if r.models == nil {
		ms, err := picpredict.TrainModels(picpredict.TrainOptions{Seed: 1, Fast: r.cfg.FastModels})
		if err != nil {
			return picpredict.Models{}, err
		}
		r.models = &ms
	}
	return *r.models, nil
}

// platform assembles the simulation platform for the scenario.
func (r *Runner) platform() (*picpredict.Platform, error) {
	ms, err := r.Models()
	if err != nil {
		return nil, err
	}
	return picpredict.NewPlatform(ms, picpredict.PlatformOptions{
		TotalElements: r.cfg.Spec.NumElements(),
		N:             float64(r.cfg.Spec.GridN()),
		Filter:        r.cfg.Spec.FilterInElements(),
	})
}
