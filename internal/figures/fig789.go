package figures

import (
	"fmt"

	"picpredict"
)

// Fig7Result holds kernel-model accuracy per processor configuration.
type Fig7Result struct {
	// MAPE[R][kernel] is the model MAPE (percent) at processor count R.
	MAPE map[int]map[string]float64
	// Mean is the grand average across kernels and configurations — the
	// paper's headline 8.42 %.
	Mean float64
	// Peak is the worst per-kernel-per-configuration MAPE (paper: 17.7 %).
	Peak float64
}

// Fig7 reproduces the model-accuracy figure: MAPE of each CMT-nek kernel
// model against the (synthetic) testbed across the per-rank per-interval
// workloads of every processor configuration.
func (r *Runner) Fig7() (*Fig7Result, error) {
	if _, err := r.Trace(); err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Fig 7: kernel-model MAPE per processor configuration ==\n")
	platform, err := r.platform()
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{MAPE: make(map[int]map[string]float64)}
	names := picpredict.KernelNames()
	fmt.Fprintf(r.out, "%8s", "R")
	for _, n := range names {
		fmt.Fprintf(r.out, " %22s", n)
	}
	fmt.Fprintln(r.out)
	count, sum := 0, 0.0
	for i, ranks := range r.cfg.Ranks {
		wl, err := r.workload(picpredict.WorkloadOptions{
			Ranks:        ranks,
			Mapping:      picpredict.MappingBin,
			FilterRadius: r.cfg.Spec.FilterRadius(),
		})
		if err != nil {
			return nil, err
		}
		acc, err := platform.KernelAccuracy(wl, r.cfg.Noise, r.cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		res.MAPE[ranks] = acc
		fmt.Fprintf(r.out, "%8d", ranks)
		for _, n := range names {
			fmt.Fprintf(r.out, " %21.2f%%", acc[n])
			sum += acc[n]
			count++
			if acc[n] > res.Peak {
				res.Peak = acc[n]
			}
		}
		fmt.Fprintln(r.out)
	}
	res.Mean = sum / float64(count)
	fmt.Fprintf(r.out, "average MAPE %.2f%% (paper: 8.42%%), peak %.2f%% (paper: 17.7%%)\n", res.Mean, res.Peak)
	return res, nil
}

// Fig8Row compares mapping peaks at one processor count.
type Fig8Row struct {
	Ranks       int
	ElementPeak int64
	BinPeak     int64
	Ratio       float64
}

// Fig8 reproduces the algorithm-evaluation figure: peak particle workload
// under element-based vs bin-based mapping per processor configuration
// (paper: bin mapping reduces the peak by about two orders of magnitude).
func (r *Runner) Fig8() ([]Fig8Row, error) {
	if _, err := r.Trace(); err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Fig 8: peak particle workload, element vs bin mapping ==\n")
	fmt.Fprintf(r.out, "%8s %14s %10s %8s\n", "R", "element peak", "bin peak", "ratio")
	var rows []Fig8Row
	for _, ranks := range r.cfg.Ranks {
		elem, err := r.workload(picpredict.WorkloadOptions{Ranks: ranks, Mapping: picpredict.MappingElement})
		if err != nil {
			return nil, err
		}
		bin, err := r.workload(picpredict.WorkloadOptions{
			Ranks: ranks, Mapping: picpredict.MappingBin, FilterRadius: r.cfg.Spec.FilterRadius(),
		})
		if err != nil {
			return nil, err
		}
		row := Fig8Row{
			Ranks:       ranks,
			ElementPeak: elem.Peak(),
			BinPeak:     bin.Peak(),
			Ratio:       float64(elem.Peak()) / float64(bin.Peak()),
		}
		rows = append(rows, row)
		fmt.Fprintf(r.out, "%8d %14d %10d %8.1fx\n", row.Ranks, row.ElementPeak, row.BinPeak, row.Ratio)
	}
	fmt.Fprintf(r.out, "paper: roughly two orders of magnitude reduction with bin mapping\n")
	return rows, nil
}

// Fig9Result compares resource utilization of the two mappings.
type Fig9Result struct {
	Ranks          int
	ElementMeanPct float64
	ElementEverPct float64
	BinMeanPct     float64
	BinEverPct     float64
	ElementBusy    int // ranks ever busy
	BinBusy        int
}

// Fig9 reproduces the processor-utilization figure at the first processor
// configuration (paper, R=1044: bin mapping 584 busy processors ≈ 56 %,
// element mapping ≈ 0.68 %).
func (r *Runner) Fig9() (*Fig9Result, error) {
	ranks := r.cfg.Ranks[0]
	if _, err := r.Trace(); err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Fig 9: processor utilization, R=%d ==\n", ranks)
	elem, err := r.workload(picpredict.WorkloadOptions{Ranks: ranks, Mapping: picpredict.MappingElement})
	if err != nil {
		return nil, err
	}
	bin, err := r.workload(picpredict.WorkloadOptions{
		Ranks: ranks, Mapping: picpredict.MappingBin, FilterRadius: r.cfg.Spec.FilterRadius(),
	})
	if err != nil {
		return nil, err
	}
	ue, ub := elem.Utilization(), bin.Utilization()
	res := &Fig9Result{
		Ranks:          ranks,
		ElementMeanPct: 100 * ue.Mean,
		ElementEverPct: 100 * ue.Ever,
		BinMeanPct:     100 * ub.Mean,
		BinEverPct:     100 * ub.Ever,
		ElementBusy:    int(ue.Ever*float64(ranks) + 0.5),
		BinBusy:        int(ub.Ever*float64(ranks) + 0.5),
	}
	fmt.Fprintf(r.out, "%10s %16s %16s\n", "mapping", "RU mean", "RU ever-busy")
	fmt.Fprintf(r.out, "%10s %15.2f%% %9.2f%% (%d procs)\n", "element", res.ElementMeanPct, res.ElementEverPct, res.ElementBusy)
	fmt.Fprintf(r.out, "%10s %15.2f%% %9.2f%% (%d procs)\n", "bin", res.BinMeanPct, res.BinEverPct, res.BinBusy)
	fmt.Fprintf(r.out, "paper: 0.68%% -> 56.13%% mean RU; 4 vs 584 busy processors at R=1044\n")
	return res, nil
}
