package figures

import (
	"fmt"
	"time"

	"picpredict"
)

// SimRow is one processor configuration of the end-to-end simulation.
type SimRow struct {
	Ranks   int
	Total   float64
	Compute float64
	Comm    float64
	ErrPct  float64 // vs noisy-testbed replay
}

// Simulate runs the full trace-driven system-level simulation (§II-C) at
// every processor configuration and validates each prediction against a
// noisy-testbed replay. It demonstrates the paper's strong-scaling finding:
// beyond the bin-count plateau, more processors stop helping the particle
// solver.
func (r *Runner) Simulate() ([]SimRow, error) {
	if _, err := r.Trace(); err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== End-to-end simulation: predicted particle-solver time per R ==\n")
	platform, err := r.platform()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "%8s %12s %12s %12s %8s\n", "R", "total (s)", "compute (s)", "comm (s)", "err")
	var rows []SimRow
	for i, ranks := range r.cfg.Ranks {
		wl, err := r.workload(picpredict.WorkloadOptions{
			Ranks:        ranks,
			Mapping:      picpredict.MappingBin,
			FilterRadius: r.cfg.Spec.FilterRadius(),
		})
		if err != nil {
			return nil, err
		}
		pred, err := platform.SimulateBSP(wl)
		if err != nil {
			return nil, err
		}
		var comp, comm float64
		for k := range pred.Compute {
			comp += pred.Compute[k]
			comm += pred.Comm[k]
		}
		_, _, errPct, err := platform.EndToEndAccuracy(wl, r.cfg.Noise, r.cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		row := SimRow{Ranks: ranks, Total: pred.Total, Compute: comp, Comm: comm, ErrPct: errPct}
		rows = append(rows, row)
		fmt.Fprintf(r.out, "%8d %12.4g %12.4g %12.4g %7.2f%%\n", row.Ranks, row.Total, row.Compute, row.Comm, row.ErrPct)
	}
	fmt.Fprintf(r.out, "paper: scaling beyond the bin plateau (1104 procs) does not improve the particle solver\n")
	return rows, nil
}

// SpeedResult quantifies the §II speed claim.
type SpeedResult struct {
	Ranks           int
	WorkloadGenTime time.Duration
	AppRunTime      time.Duration
	Speedup         float64
}

// Speed measures how long workload generation takes at the given rank count
// versus running the PIC application itself — the paper's "<2 minutes vs
// ≈24 hours" observation, at this reproduction's scale.
func (r *Runner) Speed(ranks int) (*SpeedResult, error) {
	if ranks <= 0 {
		ranks = 4176
	}
	fmt.Fprintf(r.out, "\n== §II speed claim: workload generation vs application run ==\n")
	tr, err := r.Trace() // times the application run as a side effect
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := tr.GenerateWorkload(picpredict.WorkloadOptions{
		Ranks:        ranks,
		Mapping:      picpredict.MappingBin,
		FilterRadius: r.cfg.Spec.FilterRadius(),
	}); err != nil {
		return nil, err
	}
	genTime := time.Since(start)
	res := &SpeedResult{
		Ranks:           ranks,
		WorkloadGenTime: genTime,
		AppRunTime:      r.traceTime,
		Speedup:         r.traceTime.Seconds() / genTime.Seconds(),
	}
	fmt.Fprintf(r.out, "workload generation (R=%d): %v\n", ranks, genTime.Round(time.Millisecond))
	fmt.Fprintf(r.out, "application run:            %v\n", r.traceTime.Round(time.Millisecond))
	fmt.Fprintf(r.out, "speedup: %.0fx (paper: <2 min vs ~24 h at full scale)\n", res.Speedup)
	return res, nil
}
