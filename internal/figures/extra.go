package figures

import (
	"fmt"
	"math"

	"picpredict"
)

// SamplingRow is one sampling-rate setting of the §II-D study.
type SamplingRow struct {
	// Keep is the downsampling factor (1 = the original trace).
	Keep int
	// SampleEvery is the resulting iteration distance between frames.
	SampleEvery int
	// Peak is the run-peak particles/processor seen at this rate.
	Peak int64
	// PeakErrPct is the relative deviation of Peak from the full-rate value.
	PeakErrPct float64
	// MissedMigrationsPct is the fraction of full-rate migrations the
	// coarser trace no longer observes (round trips between samples).
	MissedMigrationsPct float64
}

// Sampling quantifies the §II-D trade-off ("low sampling frequency would
// reduce the file size, but would not accurately capture particle
// movement"): workloads generated from progressively downsampled traces are
// compared against the full-rate workload.
func (r *Runner) Sampling(keeps []int) ([]SamplingRow, error) {
	if len(keeps) == 0 {
		keeps = []int{1, 2, 4, 8}
	}
	tr, err := r.Trace()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== §II-D: sampling-frequency sensitivity ==\n")
	fmt.Fprintf(r.out, "%6s %12s %8s %10s %18s\n", "keep", "sample every", "peak", "peak err", "missed migrations")
	opts := picpredict.WorkloadOptions{
		Ranks:        r.cfg.Ranks[0],
		Mapping:      picpredict.MappingBin,
		FilterRadius: r.cfg.Spec.FilterRadius(),
	}
	var rows []SamplingRow
	var fullPeak int64
	var fullMig float64
	for _, keep := range keeps {
		sub, err := tr.Downsample(keep)
		if err != nil {
			return nil, err
		}
		wl, err := sub.GenerateWorkload(opts)
		if err != nil {
			return nil, err
		}
		var mig float64
		for _, m := range wl.MigrationsPerFrame() {
			mig += float64(m)
		}
		row := SamplingRow{Keep: keep, SampleEvery: sub.SampleEvery(), Peak: wl.Peak()}
		if keep == keeps[0] {
			fullPeak, fullMig = row.Peak, mig
		}
		if fullPeak > 0 {
			row.PeakErrPct = 100 * math.Abs(float64(row.Peak-fullPeak)) / float64(fullPeak)
		}
		if fullMig > 0 {
			row.MissedMigrationsPct = 100 * (1 - mig/fullMig)
			if row.MissedMigrationsPct < 0 {
				row.MissedMigrationsPct = 0
			}
		}
		rows = append(rows, row)
		fmt.Fprintf(r.out, "%6d %12d %8d %9.2f%% %17.1f%%\n",
			row.Keep, row.SampleEvery, row.Peak, row.PeakErrPct, row.MissedMigrationsPct)
	}
	fmt.Fprintf(r.out, "paper §II-D: coarser sampling misses particle movement; peaks stay robust, migration counts degrade\n")
	return rows, nil
}

// AblationRow compares the two bin split policies at one rank count.
type AblationRow struct {
	Ranks                          int
	MedianPeak, MidpointPeak       int64
	MedianImbalance, MidpointImbal float64
}

// SplitAblation contrasts median (count-balancing) and midpoint (spatial)
// planar cuts — the design choice DESIGN.md calls out for ablation.
func (r *Runner) SplitAblation() ([]AblationRow, error) {
	if _, err := r.Trace(); err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Ablation: bin split policy (median vs midpoint) ==\n")
	fmt.Fprintf(r.out, "%8s %12s %14s %12s %14s\n", "R", "median peak", "median imbal", "midpt peak", "midpt imbal")
	var rows []AblationRow
	for _, ranks := range r.cfg.Ranks {
		med, err := r.workload(picpredict.WorkloadOptions{
			Ranks: ranks, Mapping: picpredict.MappingBin, FilterRadius: r.cfg.Spec.FilterRadius(),
		})
		if err != nil {
			return nil, err
		}
		mid, err := r.workload(picpredict.WorkloadOptions{
			Ranks: ranks, Mapping: picpredict.MappingBin, FilterRadius: r.cfg.Spec.FilterRadius(),
			MidpointSplit: true,
		})
		if err != nil {
			return nil, err
		}
		row := AblationRow{
			Ranks:           ranks,
			MedianPeak:      med.Peak(),
			MidpointPeak:    mid.Peak(),
			MedianImbalance: med.Imbalance(),
			MidpointImbal:   mid.Imbalance(),
		}
		rows = append(rows, row)
		fmt.Fprintf(r.out, "%8d %12d %14.1f %12d %14.1f\n",
			row.Ranks, row.MedianPeak, row.MedianImbalance, row.MidpointPeak, row.MidpointImbal)
	}
	fmt.Fprintf(r.out, "median cuts balance counts; midpoint cuts track space (CMT-nek uses medians)\n")
	return rows, nil
}

// MapperRow is one mapping algorithm's summary at the first rank count.
type MapperRow struct {
	Mapping   picpredict.MappingKind
	Peak      int64
	RUMeanPct float64
	Imbalance float64
	Migrated  int64
}

// Mappers evaluates every available mapping algorithm on the scenario trace
// at the first rank configuration — the framework's "test-bed for quick
// evaluation of any new mapping strategy" use case (§II-D).
func (r *Runner) Mappers() ([]MapperRow, error) {
	if _, err := r.Trace(); err != nil {
		return nil, err
	}
	ranks := r.cfg.Ranks[0]
	fmt.Fprintf(r.out, "\n== Mapping-algorithm test-bed, R=%d ==\n", ranks)
	fmt.Fprintf(r.out, "%10s %10s %10s %11s %12s\n", "mapping", "peak", "RU mean", "imbalance", "migrations")
	var rows []MapperRow
	for _, mk := range []picpredict.MappingKind{
		picpredict.MappingElement,
		picpredict.MappingBin,
		picpredict.MappingHilbert,
		picpredict.MappingWeighted,
		picpredict.MappingOhHelp,
	} {
		opts := picpredict.WorkloadOptions{Ranks: ranks, Mapping: mk}
		if mk == picpredict.MappingElement || mk == picpredict.MappingBin {
			opts.FilterRadius = r.cfg.Spec.FilterRadius()
		}
		wl, err := r.workload(opts)
		if err != nil {
			return nil, err
		}
		var mig int64
		for _, m := range wl.MigrationsPerFrame() {
			mig += m
		}
		row := MapperRow{
			Mapping:   mk,
			Peak:      wl.Peak(),
			RUMeanPct: 100 * wl.Utilization().Mean,
			Imbalance: wl.Imbalance(),
			Migrated:  mig,
		}
		rows = append(rows, row)
		fmt.Fprintf(r.out, "%10s %10d %9.1f%% %11.1f %12d\n", row.Mapping, row.Peak, row.RUMeanPct, row.Imbalance, row.Migrated)
	}
	fmt.Fprintf(r.out, "the framework evaluates mapping strategies without any parallel implementation (§II-D)\n")
	return rows, nil
}
