package figures

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"picpredict"
)

// tinyConfig runs everything at smoke-test scale.
func tinyConfig() Config {
	return Config{
		Spec: picpredict.HeleShaw().
			WithParticles(600).
			WithElements(24, 24, 1).
			WithSteps(150).
			WithSampleEvery(50).
			WithFilterRadius(0.012).
			WithBurst(0.004, 0),
		Ranks:      []int{16, 32, 64},
		FastModels: true,
	}
}

var (
	tinyRunnerOnce sync.Once
	tinyRunnerVal  *Runner
	tinyRunnerOut  bytes.Buffer
)

func tinyRunner(t *testing.T) *Runner {
	t.Helper()
	tinyRunnerOnce.Do(func() { tinyRunnerVal = NewRunner(tinyConfig(), &tinyRunnerOut) })
	return tinyRunnerVal
}

func TestFig1aMechanics(t *testing.T) {
	r := tinyRunner(t)
	res, err := r.Fig1a(64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak <= 0 || res.IdlePercent <= 0 || res.IdlePercent > 100 {
		t.Errorf("fig1a result: %+v", res)
	}
	if !strings.Contains(tinyRunnerOut.String(), "Fig 1(a)") {
		t.Error("fig1a printed nothing")
	}
}

func TestFig1bMechanics(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Fig1b([]int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A clustered bed leaves most ranks idle under element mapping.
	for _, row := range rows {
		if row.IdlePct < 50 {
			t.Errorf("R=%d idle %.1f%%, expected mostly idle", row.Ranks, row.IdlePct)
		}
	}
}

func TestFig5And6Mechanics(t *testing.T) {
	r := tinyRunner(t)
	f5, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.PeakByRanks) != 3 {
		t.Fatalf("configs = %d", len(f5.PeakByRanks))
	}
	for ranks, peaks := range f5.PeakByRanks {
		if len(peaks) != len(f5.Iterations) {
			t.Errorf("R=%d series length %d", ranks, len(peaks))
		}
	}
	f6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if f6.MaxBins <= 0 || len(f6.Bins) != len(f6.Iterations) {
		t.Errorf("fig6: %+v", f6)
	}
	// Bins grow as the bed expands.
	if f6.Bins[len(f6.Bins)-1] < f6.Bins[0] {
		t.Errorf("bins shrank: %v", f6.Bins)
	}
}

func TestFig7Mechanics(t *testing.T) {
	r := tinyRunner(t)
	f7, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if f7.Mean <= 0 || f7.Peak < f7.Mean {
		t.Errorf("fig7: mean %.2f peak %.2f", f7.Mean, f7.Peak)
	}
	if len(f7.MAPE) != 3 {
		t.Errorf("configs = %d", len(f7.MAPE))
	}
}

func TestFig8And9Mechanics(t *testing.T) {
	r := tinyRunner(t)
	f8, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f8 {
		if row.BinPeak >= row.ElementPeak {
			t.Errorf("R=%d: bin peak %d not below element peak %d", row.Ranks, row.BinPeak, row.ElementPeak)
		}
	}
	f9, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if f9.BinMeanPct <= f9.ElementMeanPct {
		t.Errorf("fig9: bin RU %.2f%% not above element %.2f%%", f9.BinMeanPct, f9.ElementMeanPct)
	}
}

func TestFig10Mechanics(t *testing.T) {
	r := tinyRunner(t)
	a, err := r.Fig10a(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5 {
		t.Fatalf("fig10a rows = %d", len(a))
	}
	// Smaller filter → more bins (monotone non-increasing with filter).
	for i := 1; i < len(a); i++ {
		if a[i].MaxBins > a[i-1].MaxBins {
			t.Errorf("bins increased with filter: %+v", a)
			break
		}
	}
	b, err := r.Fig10b(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 5 {
		t.Fatalf("fig10b rows = %d", len(b))
	}
	// Larger filter → more ghosts and a costlier kernel.
	if b[len(b)-1].PeakGhosts <= b[0].PeakGhosts {
		t.Errorf("ghosts did not grow with filter: %+v", b)
	}
	if b[len(b)-1].KernelTime <= b[0].KernelTime {
		t.Errorf("kernel time did not grow with filter: %+v", b)
	}
}

func TestSimulateAndSpeedMechanics(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("sim rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Total <= 0 {
			t.Errorf("R=%d total %v", row.Ranks, row.Total)
		}
	}
	sp, err := r.Speed(64)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Speedup <= 1 {
		t.Errorf("workload generation (%v) not faster than app run (%v)", sp.WorkloadGenTime, sp.AppRunTime)
	}
}

// TestPaperShapesFullScale verifies the reproduced figures carry the
// paper's qualitative structure at the default experiment scale. Skipped
// in -short mode: it runs the full Hele-Shaw scenario (≈15 s) and trains
// full-budget models.
func TestPaperShapesFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape verification")
	}
	var out bytes.Buffer
	r := NewRunner(Config{}, &out)

	f5, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !f5.EarlyEqualAcrossRanks {
		t.Error("Fig 5: early peaks differ across rank counts (paper: identical, capped by bin threshold)")
	}
	if !f5.DipAfterFirstRanks {
		t.Error("Fig 5: no late dip beyond the first rank count")
	}

	f6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if f6.MaxBins <= 1044 || f6.MaxBins >= 2088 {
		t.Errorf("Fig 6: max bins %d outside (1044, 2088) — crossover misplaced", f6.MaxBins)
	}

	f7, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if f7.Mean < 4 || f7.Mean > 15 {
		t.Errorf("Fig 7: mean MAPE %.2f%% not in the paper's regime (8.42%%)", f7.Mean)
	}
	if f7.Peak > 30 {
		t.Errorf("Fig 7: peak MAPE %.2f%%", f7.Peak)
	}

	f8, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's "two orders of magnitude" is at the low rank counts; it
	// also notes element peaks fall as R grows ("the elements containing
	// the majority of particles are distributed to other processors"), so
	// the ratio legitimately narrows with R.
	if f8[0].Ratio < 30 {
		t.Errorf("Fig 8 R=%d: element/bin peak ratio %.1f, want ≫1 (paper: ~100x)", f8[0].Ranks, f8[0].Ratio)
	}
	for _, row := range f8 {
		if row.Ratio < 4 {
			t.Errorf("Fig 8 R=%d: ratio %.1f, bin mapping must stay clearly ahead", row.Ranks, row.Ratio)
		}
	}
	for i := 1; i < len(f8); i++ {
		if f8[i].ElementPeak > f8[i-1].ElementPeak {
			t.Errorf("Fig 8: element peak increased with R (%d -> %d)", f8[i-1].ElementPeak, f8[i].ElementPeak)
		}
	}

	f9, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if f9.ElementMeanPct > 5 {
		t.Errorf("Fig 9: element RU %.2f%%, want ≪5%% (paper 0.68%%)", f9.ElementMeanPct)
	}
	if f9.BinMeanPct < 30 {
		t.Errorf("Fig 9: bin RU %.2f%%, want ≳30%% (paper 56%%)", f9.BinMeanPct)
	}

	sim, err := r.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// Strong-scaling saturation: beyond the bin plateau (between ranks[0]
	// and ranks[1]) further processors stop helping.
	if sim[1].Total >= sim[0].Total {
		t.Errorf("Simulate: R=%d (%v) not faster than R=%d (%v)", sim[1].Ranks, sim[1].Total, sim[0].Ranks, sim[0].Total)
	}
	if sim[3].Total < 0.95*sim[2].Total {
		t.Errorf("Simulate: R=%d still speeds up beyond the plateau (%v -> %v)", sim[3].Ranks, sim[2].Total, sim[3].Total)
	}
}

func TestSamplingAndAblationMechanics(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Sampling([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].PeakErrPct != 0 {
		t.Fatalf("sampling rows: %+v", rows)
	}
	if rows[1].SampleEvery != 2*rows[0].SampleEvery {
		t.Errorf("downsampled interval %d, want doubled", rows[1].SampleEvery)
	}
	ab, err := r.SplitAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(ab) != 3 {
		t.Fatalf("ablation rows = %d", len(ab))
	}
	for _, row := range ab {
		if row.MedianPeak <= 0 || row.MidpointPeak <= 0 {
			t.Errorf("zero peaks: %+v", row)
		}
		// Median cuts balance counts at least as well as midpoint cuts.
		if row.MedianImbalance > row.MidpointImbal+1e-9 {
			t.Errorf("R=%d: median imbalance %.2f above midpoint %.2f", row.Ranks, row.MedianImbalance, row.MidpointImbal)
		}
	}
}

func TestReportMechanics(t *testing.T) {
	r := tinyRunner(t)
	var md bytes.Buffer
	if err := r.Report(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, section := range []string{"# Experiment report", "## Fig 1", "## Fig 5", "## Fig 6", "## Fig 7", "## Fig 8", "## Fig 9", "## Fig 10", "## End-to-end"} {
		if !strings.Contains(out, section) {
			t.Errorf("report missing %q", section)
		}
	}
	if !strings.Contains(out, "8.42%") {
		t.Error("report missing paper reference values")
	}
}

func TestRebalanceMechanics(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Rebalance(nil)
	if err != nil {
		t.Fatal(err)
	}
	// (static + 3 policies) × 3 rank configurations.
	if len(rows) != 4*3 {
		t.Fatalf("rebalance rows = %d, want 12", len(rows))
	}
	for _, row := range rows {
		if row.TotalSec <= 0 {
			t.Errorf("R=%d %q: total %v", row.Ranks, row.Policy, row.TotalSec)
		}
		if row.MigrationSec < 0 || row.MigrationSec >= row.TotalSec {
			t.Errorf("R=%d %q: migration %v outside [0, total %v)", row.Ranks, row.Policy, row.MigrationSec, row.TotalSec)
		}
		if row.Policy == "" {
			if row.Epochs != 0 || row.MigratedElements != 0 || row.Speedup != 1 {
				t.Errorf("static row carries dynamic figures: %+v", row)
			}
		} else if row.Epochs > 0 && row.MigratedElements <= 0 {
			t.Errorf("R=%d %q: %d epochs moved no elements", row.Ranks, row.Policy, row.Epochs)
		}
	}
	// The dispersing bed must reward rebalancing at the largest R: at least
	// one policy beats static bisection net of migration cost.
	best := 0.0
	for _, row := range rows {
		if row.Ranks == 64 && row.Speedup > best {
			best = row.Speedup
		}
	}
	if best <= 1 {
		t.Errorf("no policy beats static bisection at R=64 (best %.2fx)", best)
	}

	var md bytes.Buffer
	if err := r.RebalanceReport(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, section := range []string{"# Dynamic load balancing", "## Headline — R=64", "net of migration cost", "| R | policy |"} {
		if !strings.Contains(out, section) {
			t.Errorf("rebalance report missing %q", section)
		}
	}
}

func TestMappersMechanics(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Mappers()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("mapper rows = %d, want 5", len(rows))
	}
	byName := map[picpredict.MappingKind]MapperRow{}
	for _, row := range rows {
		if row.Peak <= 0 {
			t.Errorf("%s: zero peak", row.Mapping)
		}
		byName[row.Mapping] = row
	}
	// Every balancing strategy beats plain element mapping on peak.
	elem := byName[picpredict.MappingElement]
	for _, mk := range []picpredict.MappingKind{picpredict.MappingBin, picpredict.MappingHilbert, picpredict.MappingOhHelp} {
		if byName[mk].Peak > elem.Peak {
			t.Errorf("%s peak %d above element %d", mk, byName[mk].Peak, elem.Peak)
		}
	}
}
