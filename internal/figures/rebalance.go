package figures

import (
	"fmt"
	"io"
	"time"

	"picpredict"
)

// RebalancePolicies are the dynamic load-balancing policies the study
// compares against static bisection (canonical internal/rebalance specs).
var RebalancePolicies = []string{"periodic:4", "threshold:1.5", "diffusion:1.5/3"}

// RebalanceRow is one (rank count, policy) outcome of the dynamic
// load-balancing study: the end-to-end prediction with migration priced as
// LogP messages, next to the static-bisection baseline at the same R.
type RebalanceRow struct {
	Ranks int
	// Policy is the canonical rebalance spec; "" is static bisection.
	Policy string
	// TotalSec is the predicted application wall time, migration included.
	TotalSec float64
	// MigrationSec is the part of TotalSec the rebalance transfers add on
	// top of the compute+comm barrier — 0 when every transfer hides under
	// the slowest rank's interval (the cost is fully overlapped).
	MigrationSec float64
	// Epochs counts the rebalances the policy fired over the run.
	Epochs int
	// MigratedElements/MigratedParticles are the total state volumes the
	// epochs moved between ranks.
	MigratedElements, MigratedParticles int64
	// Speedup is the static-bisection TotalSec at the same R divided by
	// this row's TotalSec (1.0 for the static rows themselves).
	Speedup float64
}

// Rebalance runs the dynamic load-balancing study: the element mapping
// under static bisection and under each policy, at every configured rank
// count, priced end to end so the speedups are net of migration cost. The
// element mapping is the one that degrades as the particle bed disperses
// (Fig 1's pathology) — exactly the workload rebalancing is for.
func (r *Runner) Rebalance(policies []string) ([]RebalanceRow, error) {
	if len(policies) == 0 {
		policies = RebalancePolicies
	}
	if _, err := r.Trace(); err != nil {
		return nil, err
	}
	platform, err := r.platform()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(r.out, "\n== Dynamic load balancing: element mapping, policies vs static bisection ==\n")
	fmt.Fprintf(r.out, "%8s %18s %12s %12s %7s %10s %10s %8s\n",
		"R", "policy", "total (s)", "migr (s)", "epochs", "mig elems", "mig parts", "speedup")
	var rows []RebalanceRow
	for _, ranks := range r.cfg.Ranks {
		var staticTotal float64
		for _, policy := range append([]string{""}, policies...) {
			wl, err := r.workload(picpredict.WorkloadOptions{
				Ranks:        ranks,
				Mapping:      picpredict.MappingElement,
				FilterRadius: r.cfg.Spec.FilterRadius(),
				Rebalance:    policy,
			})
			if err != nil {
				return nil, err
			}
			pred, err := platform.SimulateBSP(wl)
			if err != nil {
				return nil, err
			}
			elems, parts := wl.MigrationTotals()
			row := RebalanceRow{
				Ranks:             ranks,
				Policy:            policy,
				TotalSec:          pred.Total,
				MigrationSec:      pred.MigrationSec(),
				Epochs:            wl.MigrationEpochs(),
				MigratedElements:  elems,
				MigratedParticles: parts,
			}
			if policy == "" {
				staticTotal = row.TotalSec
			}
			row.Speedup = staticTotal / row.TotalSec
			rows = append(rows, row)
			name := row.Policy
			if name == "" {
				name = "static"
			}
			fmt.Fprintf(r.out, "%8d %18s %12.4g %12.4g %7d %10d %10d %7.2fx\n",
				row.Ranks, name, row.TotalSec, row.MigrationSec, row.Epochs,
				row.MigratedElements, row.MigratedParticles, row.Speedup)
		}
	}
	fmt.Fprintf(r.out, "speedups are net of migration cost (LogP-priced state transfers, paid once per epoch)\n")
	return rows, nil
}

// RebalanceReport writes the dynamic-load-balancing study as a
// self-contained markdown report (scripts/rebalance_report.sh regenerates
// REPORT_rebalance.md from it).
func (r *Runner) RebalanceReport(w io.Writer) error {
	rows, err := r.Rebalance(nil)
	if err != nil {
		return err
	}
	tr, err := r.Trace()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Dynamic load balancing — predicted speedup over static bisection\n\n")
	fmt.Fprintf(w, "Generated %s by `scripts/rebalance_report.sh`; all numbers are deterministic (fixed seeds), so re-running reproduces them bit-for-bit.\n\n",
		time.Now().Format(time.RFC3339))
	fmt.Fprintf(w, "Scenario: %s bed dispersal — %d particles, %d elements, %d frames; element mapping; processor configurations %v. ",
		r.cfg.Spec.Name(), tr.NumParticles(), r.cfg.Spec.NumElements(), tr.Frames(), r.cfg.Ranks)
	fmt.Fprintf(w, "Every prediction below is end-to-end through the BSP simulator with rebalance state transfers priced as LogP messages (latency + bytes/bandwidth, paid once per epoch), so the speedups are **net of migration cost**.\n\n")

	fmt.Fprintf(w, "| R | policy | predicted total (s) | migration (s) | epochs | elements moved | particles moved | speedup vs static |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|\n")
	var headline []RebalanceRow
	maxRanks := r.cfg.Ranks[0]
	for _, ranks := range r.cfg.Ranks {
		if ranks > maxRanks {
			maxRanks = ranks
		}
	}
	for _, row := range rows {
		name := row.Policy
		if name == "" {
			name = "static bisection"
		}
		fmt.Fprintf(w, "| %d | %s | %.4g | %.4g | %d | %d | %d | %.2f× |\n",
			row.Ranks, name, row.TotalSec, row.MigrationSec, row.Epochs,
			row.MigratedElements, row.MigratedParticles, row.Speedup)
		if row.Ranks == maxRanks {
			headline = append(headline, row)
		}
	}

	fmt.Fprintf(w, "\n## Headline — R=%d (paper-scale processor configuration)\n\n", maxRanks)
	for _, row := range headline {
		if row.Policy == "" {
			fmt.Fprintf(w, "Static bisection of the frame-0 element decomposition predicts **%.4g s**; as the bed disperses, the initial cut goes stale and the loaded ranks serialize the run.\n\n", row.TotalSec)
			continue
		}
		fmt.Fprintf(w, "- **%s**: %.4g s predicted — **%.2f× vs static**, paying %.4g s of migration over %d epoch(s) (%d elements, %d resident particles shipped).\n",
			row.Policy, row.TotalSec, row.Speedup, row.MigrationSec, row.Epochs,
			row.MigratedElements, row.MigratedParticles)
	}

	fmt.Fprintf(w, "\n## Reading the migration column\n\n")
	fmt.Fprintf(w, "`migration (s)` is the *marginal* barrier extension: each epoch's transfers enter the event queue as LogP messages, and the interval charges only the time they push the barrier past the compute+comm critical path. ")
	fmt.Fprintf(w, "A zero therefore does not mean free — it means the one-off transfers finished under the slowest rank's interval, so the rebalance was absorbed into existing slack. The element/particle volume columns show what actually moved.\n")
	return nil
}
