// Package faultfs injects storage faults into io.Writer and io.Reader /
// io.ReadSeeker streams so recovery paths can be proven to fire rather than
// assumed to: short writes and ENOSPC at a chosen offset (the torn tail a
// crash or full disk leaves), silent bit flips (media corruption), and
// truncated reads. The trace, workload and checkpoint tests thread these
// wrappers under the real readers and writers and assert that the typed
// resilience errors — not opaque failures — come back out.
package faultfs

import (
	"errors"
	"fmt"
	"io"
)

// ErrNoSpace is the injected write failure, standing in for ENOSPC.
var ErrNoSpace = errors.New("faultfs: no space left on device")

// CutWriter returns a writer that accepts exactly n bytes of w's stream and
// fails every write past that point with ErrNoSpace. The write straddling
// the boundary is short — its prefix reaches w — reproducing the torn final
// record a full disk or a mid-write crash produces.
func CutWriter(w io.Writer, n int64) io.Writer { return CutWriterErr(w, n, ErrNoSpace) }

// CutWriterErr is CutWriter with a caller-chosen failure error.
func CutWriterErr(w io.Writer, n int64, fail error) io.Writer {
	return &cutWriter{w: w, left: n, fail: fail}
}

type cutWriter struct {
	w    io.Writer
	left int64
	fail error
}

func (c *cutWriter) Write(p []byte) (int, error) {
	if c.left <= 0 {
		return 0, c.fail
	}
	if int64(len(p)) <= c.left {
		n, err := c.w.Write(p)
		c.left -= int64(n)
		return n, err
	}
	n, err := c.w.Write(p[:c.left])
	c.left -= int64(n)
	if err != nil {
		return n, err
	}
	return n, c.fail
}

// FlipWriter returns a writer that passes w's stream through unchanged
// except for the byte at offset off, which is XORed with mask — a silent
// single-byte corruption that only a checksum can catch. A zero mask is
// promoted to 0xFF so the byte always changes.
func FlipWriter(w io.Writer, off int64, mask byte) io.Writer {
	if mask == 0 {
		mask = 0xFF
	}
	return &flipWriter{w: w, at: off, mask: mask}
}

type flipWriter struct {
	w    io.Writer
	off  int64
	at   int64
	mask byte
}

func (f *flipWriter) Write(p []byte) (int, error) {
	if f.at >= f.off && f.at < f.off+int64(len(p)) {
		// Corrupt a private copy; callers own p.
		q := make([]byte, len(p))
		copy(q, p)
		q[f.at-f.off] ^= f.mask
		p = q
	}
	n, err := f.w.Write(p)
	f.off += int64(n)
	return n, err
}

// CutReader returns a reader that ends r's stream with a clean EOF after n
// bytes — what reading back a file whose tail was torn off looks like.
func CutReader(r io.Reader, n int64) io.Reader { return io.LimitReader(r, n) }

// Reader wraps an io.Reader (or io.ReadSeeker) and flips the byte at a
// chosen offset with a chosen mask, tracking offsets across Seek when the
// underlying stream supports it.
type Reader struct {
	r    io.Reader
	off  int64
	at   int64
	mask byte
}

// FlipReader returns a Reader over r whose byte at offset off reads back
// XORed with mask. A zero mask is promoted to 0xFF.
func FlipReader(r io.Reader, off int64, mask byte) *Reader {
	if mask == 0 {
		mask = 0xFF
	}
	return &Reader{r: r, at: off, mask: mask}
}

// Read implements io.Reader.
func (f *Reader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 && f.at >= f.off && f.at < f.off+int64(n) {
		p[f.at-f.off] ^= f.mask
	}
	f.off += int64(n)
	return n, err
}

// Seek implements io.Seeker when the underlying stream does; otherwise it
// fails, keeping the wrapper honest about its capabilities.
func (f *Reader) Seek(offset int64, whence int) (int64, error) {
	s, ok := f.r.(io.Seeker)
	if !ok {
		return 0, fmt.Errorf("faultfs: underlying %T is not seekable", f.r)
	}
	pos, err := s.Seek(offset, whence)
	if err == nil {
		f.off = pos
	}
	return pos, err
}
