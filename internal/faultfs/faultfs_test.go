package faultfs

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestCutWriter(t *testing.T) {
	var buf bytes.Buffer
	w := CutWriter(&buf, 5)
	n, err := w.Write([]byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("first write: (%d, %v)", n, err)
	}
	n, err = w.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("boundary write: (%d, %v), want (2, ErrNoSpace)", n, err)
	}
	if buf.String() != "abcde" {
		t.Errorf("wrote %q, want the first 5 bytes", buf.String())
	}
	// Once the device is "full", every further write fails.
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Errorf("post-cut write: %v", err)
	}
}

func TestFlipWriter(t *testing.T) {
	var buf bytes.Buffer
	w := FlipWriter(&buf, 2, 0x01)
	src := []byte("abcd")
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes(); got[2] != 'c'^0x01 {
		t.Errorf("byte 2 = %#x, want flipped", got[2])
	}
	if src[2] != 'c' {
		t.Error("FlipWriter mutated the caller's buffer")
	}
	// Zero mask defaults to inverting the whole byte.
	var buf2 bytes.Buffer
	w2 := FlipWriter(&buf2, 0, 0)
	if _, err := w2.Write([]byte{0x0f}); err != nil {
		t.Fatal(err)
	}
	if buf2.Bytes()[0] != 0xf0 {
		t.Errorf("zero-mask flip = %#x, want 0xf0", buf2.Bytes()[0])
	}
}

func TestCutReader(t *testing.T) {
	r := CutReader(strings.NewReader("abcdef"), 4)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Errorf("read %q", got)
	}
}

func TestFlipReader(t *testing.T) {
	r := FlipReader(strings.NewReader("abcd"), 1, 0xff)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'a' || got[1] != 'b'^0xff || got[2] != 'c' {
		t.Errorf("flip at 1: %v", got)
	}
}

func TestFlipReaderSeek(t *testing.T) {
	r := FlipReader(strings.NewReader("abcd"), 3, 0xff)
	if _, err := r.Seek(2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	// After seeking to 2, stream offset 3 is the second byte read.
	if got[0] != 'c' || got[1] != 'd'^0xff {
		t.Errorf("after seek: %v", got)
	}
	// Seek on a non-seekable underlying reader errors.
	nr := FlipReader(iotestOnlyReader{strings.NewReader("x")}, 0, 1)
	if _, err := nr.Seek(0, io.SeekStart); err == nil {
		t.Error("seek on non-seeker accepted")
	}
}

// iotestOnlyReader hides the Seeker of the wrapped reader.
type iotestOnlyReader struct{ r io.Reader }

func (o iotestOnlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }
