package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"picpredict"
	"picpredict/internal/obs"
)

// sharedModels trains one fast model set for the whole test binary — real
// training takes seconds, and every prediction path only needs *a* valid
// model set, so the stub trainers below hand out this one.
var (
	modelsOnce   sync.Once
	sharedModels picpredict.Models
	modelsErr    error
)

func testModels(t *testing.T) picpredict.Models {
	t.Helper()
	modelsOnce.Do(func() {
		sharedModels, modelsErr = picpredict.TrainModels(picpredict.TrainOptions{Seed: 1, Fast: true})
	})
	if modelsErr != nil {
		t.Fatalf("training shared test models: %v", modelsErr)
	}
	return sharedModels
}

// testTrace simulates one small deterministic scenario for the binary.
var (
	traceOnce  sync.Once
	cachedTr   *picpredict.Trace
	cachedTrEr error
)

func testTrace(t *testing.T) *picpredict.Trace {
	t.Helper()
	traceOnce.Do(func() {
		sc := picpredict.HeleShaw().WithParticles(120).WithSteps(20).WithSampleEvery(5)
		cachedTr, cachedTrEr = sc.Run()
	})
	if cachedTrEr != nil {
		t.Fatalf("building test trace: %v", cachedTrEr)
	}
	return cachedTr
}

// stubTrainer counts training runs per model key and returns the shared
// models after an optional delay — the seam that makes the load tests fast
// and deterministic.
type stubTrainer struct {
	models picpredict.Models
	delay  time.Duration
	counts sync.Map // ModelKey → *atomic.Int64
}

func (st *stubTrainer) count(key ModelKey) int64 {
	v, ok := st.counts.Load(key)
	if !ok {
		return 0
	}
	return v.(*atomic.Int64).Load()
}

// install points s at the stub, counting by the same fingerprint the
// server computes.
func (st *stubTrainer) install(s *Server, crcOf func(kind picpredict.ModelKind, opts picpredict.TrainOptions) ModelKey) {
	s.trainer = func(ctx context.Context, kind picpredict.ModelKind, opts picpredict.TrainOptions) (picpredict.Models, error) {
		key := crcOf(kind, opts)
		v, _ := st.counts.LoadOrStore(key, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
		if st.delay > 0 {
			select {
			case <-time.After(st.delay):
			case <-ctx.Done():
				return picpredict.Models{}, ctx.Err()
			}
		}
		return st.models, nil
	}
}

const testCRC = "0xtesttrace"

// newTestServer assembles a server over the shared test trace with a stub
// trainer; cfg zero-values take the serving defaults.
func newTestServer(t *testing.T, cfg Config, delay time.Duration) (*Server, *stubTrainer) {
	t.Helper()
	if cfg.TotalElements == 0 {
		cfg.TotalElements = 16384
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	if err := s.AddTrace("test", testTrace(t), testCRC); err != nil {
		t.Fatal(err)
	}
	st := &stubTrainer{models: testModels(t), delay: delay}
	st.install(s, func(kind picpredict.ModelKind, opts picpredict.TrainOptions) ModelKey {
		return Fingerprint(testCRC, kind, opts)
	})
	s.MarkReady()
	return s, st
}

func postPredict(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/predict: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestEndpoints(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, Obs: obs.New()}, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// healthz is always 200; readyz tracks the ready flag.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	s.ready.Store(false)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while not ready: %v %v, want 503", resp.StatusCode, err)
	}
	resp.Body.Close()
	s.ready.Store(true)

	// Input validation.
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{"ranks": [8,`, http.StatusBadRequest},
		{"no ranks", `{}`, http.StatusBadRequest},
		{"negative rank", `{"ranks":[-4]}`, http.StatusBadRequest},
		{"unknown scenario", `{"scenario":"nope","ranks":[8]}`, http.StatusNotFound},
		{"unknown mapping", `{"ranks":[8],"mapping":"zigzag"}`, http.StatusBadRequest},
		{"unknown machine", `{"ranks":[8],"machine":"cray"}`, http.StatusBadRequest},
		{"unknown model kind", `{"ranks":[8],"model":{"kind":"psychic"}}`, http.StatusBadRequest},
	} {
		status, body := postPredict(t, ts.URL, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, status, body, tc.want)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not {\"error\": ...}", tc.name, body)
		}
	}

	// Happy path: cold predict is a miss, repeat is a hit, results are
	// well-formed and per-rank.
	status, raw := postPredict(t, ts.URL, `{"ranks":[8,16],"mapping":"bin","filter":0.004,"model":{"fast":true,"seed":1}}`)
	if status != http.StatusOK {
		t.Fatalf("predict: %d (%s)", status, raw)
	}
	var pr PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if pr.Cache != "miss" || pr.Scenario != "test" || len(pr.Results) != 2 {
		t.Fatalf("cold response: %+v, want miss over scenario test with 2 results", pr)
	}
	for i, res := range pr.Results {
		if res.TotalSec <= 0 || res.Ranks != []int{8, 16}[i] {
			t.Errorf("result %d: %+v — non-positive total or wrong ranks", i, res)
		}
	}
	status, raw = postPredict(t, ts.URL, `{"ranks":[8,16],"mapping":"bin","filter":0.004,"model":{"fast":true,"seed":1}}`)
	if status != http.StatusOK {
		t.Fatalf("warm predict: %d (%s)", status, raw)
	}
	if err := json.Unmarshal(raw, &pr); err != nil || pr.Cache != "hit" {
		t.Fatalf("warm predict cache = %q err=%v, want hit", pr.Cache, err)
	}

	// /v1/models reflects the one resident entry.
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var ml struct {
		Capacity int         `json:"capacity"`
		Models   []EntryInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ml); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ml.Models) != 1 || ml.Models[0].State != "ready" || ml.Models[0].Hits != 1 {
		t.Fatalf("/v1/models = %+v, want one ready entry with 1 hit", ml)
	}
}

// TestLoadConcurrent64 is the acceptance load test: 64 concurrent requests
// against a cold registry through a 2-worker/4-queue pool. Exactly one
// training run per unique configuration, saturated requests get a clean
// 429 (never a hang or panic), and everything is race-clean under -race.
func TestLoadConcurrent64(t *testing.T) {
	reg := obs.New()
	s, st := newTestServer(t, Config{Workers: 2, Queue: 4, Obs: reg}, 100*time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bodyFor := func(seed int64) string {
		return fmt.Sprintf(`{"ranks":[8],"mapping":"bin","model":{"fast":true,"seed":%d}}`, seed)
	}
	keyFor := func(seed int64) ModelKey {
		return Fingerprint(testCRC, picpredict.ModelSynthetic, picpredict.TrainOptions{Fast: true, Seed: seed})
	}

	const n = 64
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := int64(1 + i%2) // two unique configurations interleaved
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(bodyFor(seed)))
			if err != nil {
				statuses[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint — drain for keep-alive
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	var ok200, rej429, other int
	for i, code := range statuses {
		switch code {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			rej429++
		case -1:
			t.Fatalf("request %d: transport error", i)
		default:
			other++
			t.Errorf("request %d: unexpected status %d", i, code)
		}
	}
	t.Logf("load: %d ok, %d shed (429), %d other", ok200, rej429, other)
	if ok200 == 0 {
		t.Error("no request succeeded under load")
	}
	if rej429 == 0 {
		t.Error("64 concurrent requests against capacity 6 shed nothing — admission control is not engaging")
	}
	if got := reg.Counter(obs.ServeRejected).Value(); got != int64(rej429) {
		t.Errorf("rejected counter = %d, HTTP 429s = %d", got, rej429)
	}

	// Warm each configuration sequentially: whether or not a config's
	// burst requests all got shed, its total training count must be
	// exactly one afterwards — singleflight plus cache.
	for _, seed := range []int64{1, 2} {
		status, raw := postPredict(t, ts.URL, bodyFor(seed))
		if status != http.StatusOK {
			t.Fatalf("sequential warm seed %d: %d (%s)", seed, status, raw)
		}
		if got := st.count(keyFor(seed)); got != 1 {
			t.Errorf("configuration seed=%d trained %d times, want exactly 1", seed, got)
		}
	}
}

// TestRequestTimeout: a request that cannot finish inside its deadline
// gets 504 and records a timeout, instead of hanging.
func TestRequestTimeout(t *testing.T) {
	reg := obs.New()
	s, _ := newTestServer(t, Config{Workers: 1, Queue: 2, RequestTimeout: 60 * time.Millisecond, Obs: reg}, 500*time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, raw := postPredict(t, ts.URL, `{"ranks":[8],"model":{"fast":true}}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, raw)
	}
	if got := reg.Counter(obs.ServeTimeouts).Value(); got == 0 {
		t.Error("timeout counter did not move")
	}
}

// TestGracefulDrain: cancelling the serve context (SIGTERM) drains
// in-flight requests to completion, flips readiness off, and Serve returns
// nil — the exit-0 contract the smoke harness also checks end to end.
func TestGracefulDrain(t *testing.T) {
	reg := obs.New()
	s, _ := newTestServer(t, Config{Workers: 2, Queue: 4, Obs: reg}, 300*time.Millisecond)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Wait until the listener accepts.
	waitReady(t, base)

	// Launch an in-flight request (training stub holds it ~300ms), then
	// SIGTERM mid-flight.
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/predict", "application/json",
			bytes.NewReader([]byte(`{"ranks":[8],"model":{"fast":true}}`)))
		if err != nil {
			inflight <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // let the request reach the worker
	cancel()

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil (clean drain)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
	select {
	case status := <-inflight:
		if status != http.StatusOK {
			t.Fatalf("in-flight request finished with %d, want 200 (drain must complete it)", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	if s.ready.Load() {
		t.Error("server still ready after drain")
	}
	if reg.Timer(obs.ServeDrainNs).Count() != 1 {
		t.Error("drain timer not recorded")
	}
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// TestWorkloadArtefactReplay: a pre-generated workload serves without
// generation, and conflicting parameters are rejected.
func TestWorkloadArtefactReplay(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, Obs: obs.New()}, 0)
	wl, err := testTrace(t).GenerateWorkload(picpredict.WorkloadOptions{
		Ranks: 8, Mapping: picpredict.MappingBin, FilterRadius: 0.004,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddWorkload("wl8", wl, "0xwl8"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, raw := postPredict(t, ts.URL, `{"workload":"wl8","model":{"fast":true}}`)
	if status != http.StatusOK {
		t.Fatalf("workload replay: %d (%s)", status, raw)
	}
	var pr PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Results) != 1 || pr.Results[0].Ranks != 8 {
		t.Fatalf("replay results = %+v, want one R=8 result", pr.Results)
	}
	if status, _ := postPredict(t, ts.URL, `{"workload":"wl8","ranks":[8]}`); status != http.StatusBadRequest {
		t.Errorf("workload+ranks accepted with %d, want 400", status)
	}
	if status, _ := postPredict(t, ts.URL, `{"workload":"missing"}`); status != http.StatusNotFound {
		t.Errorf("unknown workload got %d, want 404", status)
	}
}

// TestDrainingRejectsNewWork: once draining, new predicts get 503.
func TestDrainingRejectsNewWork(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, Obs: obs.New()}, 0)
	s.draining.Store(true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if status, _ := postPredict(t, ts.URL, `{"ranks":[8]}`); status != http.StatusServiceUnavailable {
		t.Fatalf("draining predict got %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz got %d, want 503", resp.StatusCode)
	}
}
