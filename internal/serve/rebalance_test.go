package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"picpredict"
	"picpredict/internal/obs"
)

// TestPredictRebalanceParam: rebalance is a per-query workload parameter —
// validated, element-mapping-only, and surfaced as migration figures in the
// results without entering the model key.
func TestPredictRebalanceParam(t *testing.T) {
	s, st := newTestServer(t, Config{Workers: 2, Obs: obs.New()}, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Validation: malformed specs and non-element mappings are 400s.
	for _, tc := range []struct {
		name, body string
	}{
		{"bad spec", `{"ranks":[8],"rebalance":"periodic:0"}`},
		{"unknown policy", `{"ranks":[8],"rebalance":"bogus:1"}`},
		{"default bin mapping", `{"ranks":[8],"rebalance":"periodic:4"}`},
		{"hilbert mapping", `{"ranks":[8],"mapping":"hilbert","rebalance":"periodic:4"}`},
	} {
		status, body := postPredict(t, ts.URL, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, status, body)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not {\"error\": ...}", tc.name, body)
		}
	}

	// Happy path: element mapping + periodic policy reports per-rank
	// migration cost and epoch counts.
	status, raw := postPredict(t, ts.URL,
		`{"ranks":[4],"mapping":"element","rebalance":"periodic:2","model":{"fast":true,"seed":1}}`)
	if status != http.StatusOK {
		t.Fatalf("rebalance predict: %d (%s)", status, raw)
	}
	var pr PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Results) != 1 {
		t.Fatalf("results = %+v, want one", pr.Results)
	}
	res := pr.Results[0]
	if res.TotalSec <= 0 {
		t.Errorf("non-positive total %g", res.TotalSec)
	}
	if res.RebalanceEpochs <= 0 {
		t.Errorf("RebalanceEpochs = %d, want > 0 for the clustered test trace", res.RebalanceEpochs)
	}
	if res.MigrationSec <= 0 || res.MigrationSec >= res.TotalSec {
		t.Errorf("MigrationSec %g outside (0, total %g)", res.MigrationSec, res.TotalSec)
	}

	// Not in the model key: the static and rebalanced queries above share
	// one trained model (same kind/options fingerprint → one training run).
	status, raw = postPredict(t, ts.URL,
		`{"ranks":[4],"mapping":"element","model":{"fast":true,"seed":1}}`)
	if status != http.StatusOK {
		t.Fatalf("static predict: %d (%s)", status, raw)
	}
	var pr2 PredictResponse // fresh: omitempty fields must not inherit pr's
	if err := json.Unmarshal(raw, &pr2); err != nil {
		t.Fatal(err)
	}
	if pr2.Results[0].MigrationSec != 0 || pr2.Results[0].RebalanceEpochs != 0 {
		t.Errorf("static result carries migration figures: %+v", pr2.Results[0])
	}
	key := Fingerprint(testCRC, picpredict.ModelSynthetic, picpredict.TrainOptions{Seed: 1, Fast: true})
	if got := st.count(key); got != 1 {
		t.Errorf("%d training runs across rebalance/static queries, want 1 (rebalance must stay out of the model key)", got)
	}
}

// TestPredictRebalanceRejectedOnWorkloadReplay: a workload artefact bakes
// its mapping in, so a rebalance param alongside it is a client error.
func TestPredictRebalanceRejectedOnWorkloadReplay(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, Obs: obs.New()}, 0)
	wl, err := testTrace(t).GenerateWorkload(picpredict.WorkloadOptions{
		Ranks: 8, Mapping: picpredict.MappingElement, FilterRadius: 0.004,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddWorkload("wl8", wl, "0xwl8"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := postPredict(t, ts.URL, `{"workload":"wl8","rebalance":"periodic:4","model":{"fast":true}}`)
	if status != http.StatusBadRequest {
		t.Errorf("workload+rebalance: %d (%s), want 400", status, body)
	}
}

// TestPredictElementMappingNeedsMesh: a trace loaded from a file carries no
// element grid (picserve attaches one with -elements), so element-anchored
// predict/optimize requests against it are 400s naming the flag — not
// generator 500s — while bin mapping keeps working.
func TestPredictElementMappingNeedsMesh(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, SweepWorkers: 2, Obs: obs.New()}, 0)
	var buf bytes.Buffer
	if err := testTrace(t).Write(&buf); err != nil {
		t.Fatal(err)
	}
	bare, err := picpredict.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := bare.Mesh(); ok {
		t.Fatal("round-tripped trace unexpectedly carries a mesh")
	}
	if err := s.AddTrace("bare", bare, testCRC); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := postPredict(t, ts.URL, `{"scenario":"bare","ranks":[8],"mapping":"element","model":{"fast":true}}`)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "-elements") {
		t.Errorf("mesh-less element predict: %d (%s), want 400 naming -elements", status, body)
	}
	status, body = postOptimize(t, ts.URL, `{"scenario":"bare","ranks":"4-8:x2","mappings":["element"],"model":{"fast":true}}`)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "-elements") {
		t.Errorf("mesh-less element optimize: %d (%s), want 400 naming -elements", status, body)
	}
	status, body = postPredict(t, ts.URL, `{"scenario":"bare","ranks":[8],"model":{"fast":true,"seed":1}}`)
	if status != http.StatusOK {
		t.Errorf("mesh-less bin predict: %d (%s), want 200", status, body)
	}
}

// TestOptimizeRebalanceAxis: /v1/optimize accepts a rebalances axis,
// enumerates only valid (mapping, rebalance) pairs, and labels dynamic
// frontier points with their policy and migration cost.
func TestOptimizeRebalanceAxis(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, SweepWorkers: 4, Obs: obs.New()}, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"ranks":"4-8:x2","mappings":["element","bin"],"rebalances":["none","periodic:2"],` +
		`"filter":0.004,"model":{"fast":true,"seed":1}}`
	status, raw := postOptimize(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("optimize: %d (%s)", status, raw)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(raw, &or); err != nil {
		t.Fatal(err)
	}
	sw := or.Sweep
	if sw == nil {
		t.Fatal("response has no sweep result")
	}
	// 2 ranks × (element×{none,periodic:2} + bin×{none}) = 6 configs.
	if sw.Configs != 6 {
		t.Errorf("configs = %d, want 6", sw.Configs)
	}
	dynamic := 0
	for _, p := range sw.Frontier {
		if p.Rebalance == "" {
			continue
		}
		dynamic++
		if p.Rebalance != "periodic:2" || string(p.Mapping) != "element" {
			t.Errorf("dynamic frontier point %+v, want element+periodic:2", p.Config)
		}
	}
	if dynamic != 2 {
		t.Errorf("%d dynamic frontier points, want 2", dynamic)
	}

	// A dynamic policy without the element mapping on the axis is a 400.
	status, raw = postOptimize(t, ts.URL,
		`{"ranks":"4-8:x2","mappings":["bin"],"rebalances":["periodic:2"],"model":{"fast":true}}`)
	if status != http.StatusBadRequest {
		t.Errorf("bin-only rebalance sweep: %d (%s), want 400", status, raw)
	}
	// And so is a malformed spec.
	status, raw = postOptimize(t, ts.URL,
		`{"ranks":"4-8:x2","mappings":["element"],"rebalances":["periodic:0"],"model":{"fast":true}}`)
	if status != http.StatusBadRequest {
		t.Errorf("bad rebalance spec: %d (%s), want 400", status, raw)
	}
}
