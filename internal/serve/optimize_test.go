package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"picpredict"
	"picpredict/internal/obs"
)

func postOptimize(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/optimize: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestOptimizeEndpoint covers the happy path, response shape, cross-call
// determinism, and the cache-warming contract: models a sweep trains are
// hits for subsequent point predicts.
func TestOptimizeEndpoint(t *testing.T) {
	s, st := newTestServer(t, Config{Workers: 2, SweepWorkers: 4, Obs: obs.New()}, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"ranks":"4-16:x2","mappings":["bin","hilbert"],"machines":["quartz","vulcan"],` +
		`"model_kinds":["synthetic","wallclock"],"filter":0.004,"model":{"fast":true,"seed":1},"top":5}`
	status, raw := postOptimize(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("optimize: %d (%s)", status, raw)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(raw, &or); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if or.Scenario != "test" {
		t.Errorf("scenario = %q, want test", or.Scenario)
	}
	if len(or.Models) != 2 || or.Models[0].Kind != "synthetic" || or.Models[1].Kind != "wallclock" {
		t.Fatalf("models = %+v, want synthetic then wallclock", or.Models)
	}
	for _, m := range or.Models {
		if m.Cache != "miss" {
			t.Errorf("cold sweep resolved %s as %q, want miss", m.Kind, m.Cache)
		}
	}
	sw := or.Sweep
	if sw == nil {
		t.Fatal("response has no sweep result")
	}
	if sw.Configs != 3*2*2*2 {
		t.Errorf("configs = %d, want 24", sw.Configs)
	}
	if sw.SharedBuilds != 3*2 {
		t.Errorf("shared builds = %d, want 6", sw.SharedBuilds)
	}
	if len(sw.Frontier) != 5 {
		t.Errorf("frontier truncated to %d points, want top=5", len(sw.Frontier))
	}
	for i := 1; i < len(sw.Frontier); i++ {
		if sw.Frontier[i].TotalSec < sw.Frontier[i-1].TotalSec {
			t.Errorf("frontier not sorted at %d", i)
		}
	}
	if sw.Fastest.TotalSec <= 0 {
		t.Errorf("fastest total %g, want positive", sw.Fastest.TotalSec)
	}

	// The same grid again must return byte-identical sweep JSON (the
	// serve-level determinism contract) and resolve every model as a hit.
	status, raw2 := postOptimize(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("second optimize: %d (%s)", status, raw2)
	}
	var or2 OptimizeResponse
	if err := json.Unmarshal(raw2, &or2); err != nil {
		t.Fatal(err)
	}
	for _, m := range or2.Models {
		if m.Cache != "hit" {
			t.Errorf("warm sweep resolved %s as %q, want hit", m.Kind, m.Cache)
		}
	}
	if !reflect.DeepEqual(or.Sweep, or2.Sweep) {
		t.Error("two identical optimize calls returned different sweep results")
	}

	// Cache warming: a point predict for a swept configuration hits the
	// models the sweep left resident, with zero additional training.
	for _, kind := range []string{"synthetic", "wallclock"} {
		status, raw := postPredict(t, ts.URL,
			`{"ranks":[8],"mapping":"bin","filter":0.004,"model":{"kind":"`+kind+`","fast":true,"seed":1}}`)
		if status != http.StatusOK {
			t.Fatalf("post-sweep predict (%s): %d (%s)", kind, status, raw)
		}
		var pr PredictResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Cache != "hit" {
			t.Errorf("post-sweep predict (%s) cache = %q, want hit (sweep must warm the registry)", kind, pr.Cache)
		}
		key := Fingerprint(testCRC, picpredict.ModelKind(kind), picpredict.TrainOptions{Fast: true, Seed: 1})
		if got := st.count(key); got != 1 {
			t.Errorf("kind %s trained %d times across sweep+predict, want exactly 1", kind, got)
		}
	}
}

// TestOptimizeValidation maps each bad request to its status.
func TestOptimizeValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, Obs: obs.New()}, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{"ranks": "8`, http.StatusBadRequest},
		{"missing ranks", `{}`, http.StatusBadRequest},
		{"bad spec", `{"ranks":"8-4"}`, http.StatusBadRequest},
		{"bad spec step", `{"ranks":"8-64:y2"}`, http.StatusBadRequest},
		{"over-wide spec", `{"ranks":"1-1000000:+1"}`, http.StatusBadRequest},
		{"bad mapping", `{"ranks":"8","mappings":["zigzag"]}`, http.StatusBadRequest},
		{"bad machine", `{"ranks":"8","machines":["cray"]}`, http.StatusBadRequest},
		{"bad kind", `{"ranks":"8","model_kinds":["psychic"]}`, http.StatusBadRequest},
		{"kind conflict", `{"ranks":"8","model_kinds":["synthetic"],"model":{"kind":"wallclock"}}`, http.StatusBadRequest},
		{"unknown scenario", `{"scenario":"nope","ranks":"8"}`, http.StatusNotFound},
	} {
		status, body := postOptimize(t, ts.URL, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, status, body, tc.want)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not {\"error\": ...}", tc.name, body)
		}
	}
}

// TestOptimizeCacheOnly: a hedged (cache-only) optimize against a cold
// registry declines with 409 instead of training.
func TestOptimizeCacheOnly(t *testing.T) {
	reg := obs.New()
	s, st := newTestServer(t, Config{Workers: 2, Obs: reg}, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize",
		strings.NewReader(`{"ranks":"8","model":{"fast":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(CacheOnlyHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint — drain for keep-alive
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cold cache-only optimize got %d, want 409", resp.StatusCode)
	}
	if got := reg.Counter(obs.ServeColdDeclines).Value(); got != 1 {
		t.Errorf("cold-decline counter = %d, want 1", got)
	}
	key := Fingerprint(testCRC, picpredict.ModelSynthetic, picpredict.TrainOptions{Fast: true})
	if got := st.count(key); got != 0 {
		t.Errorf("cache-only optimize trained %d times, want 0", got)
	}
}

// TestOptimizeSaturation floods a 1-worker/1-queue pool with concurrent
// sweeps: the overflow must shed with 429 while at least one completes.
func TestOptimizeSaturation(t *testing.T) {
	reg := obs.New()
	s, _ := newTestServer(t, Config{Workers: 1, Queue: 1, SweepWorkers: 2, Obs: reg}, 100*time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
				strings.NewReader(`{"ranks":"4-16:x2","model":{"fast":true}}`))
			if err != nil {
				statuses[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint — drain for keep-alive
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	var ok200, rej429 int
	for i, code := range statuses {
		switch code {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			rej429++
		case -1:
			t.Fatalf("request %d: transport error", i)
		default:
			t.Errorf("request %d: unexpected status %d", i, code)
		}
	}
	if ok200 == 0 {
		t.Error("no optimize succeeded under load")
	}
	if rej429 == 0 {
		t.Error("16 concurrent sweeps against capacity 2 shed nothing — admission control is not engaging")
	}
	if got := reg.Counter(obs.ServeRejected).Value(); got != int64(rej429) {
		t.Errorf("rejected counter = %d, HTTP 429s = %d", got, rej429)
	}
}

// TestOptimizeCancellationNoLeak cancels an optimize mid-sweep (while its
// model training is still pending) and verifies the server returns to the
// baseline goroutine count — the sweep's worker pool must not outlive its
// request.
func TestOptimizeCancellationNoLeak(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, SweepWorkers: 4, Obs: obs.New()}, 300*time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/optimize",
		strings.NewReader(`{"ranks":"4-64:x2","model":{"fast":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint — drain for keep-alive
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the sweep reach the training wait
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled optimize never returned")
	}

	// Goroutine counts settle asynchronously (the HTTP client connection
	// and the aborted trainer unwind); retry briefly before judging.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after cancelled optimize: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
