package serve

import "context"

// pool is the bounded worker pool with queue-depth admission control. Two
// semaphores bound the request pipeline: admit caps the total number of
// requests in the system (executing + queued) and work caps concurrent
// execution. A request first takes an admit token — non-blocking, so a full
// system answers 429 immediately instead of building an unbounded backlog —
// then blocks (queued) until a work token frees up or its deadline passes.
type pool struct {
	admit chan struct{}
	work  chan struct{}
}

// newPool sizes the pool: workers concurrent executions, queue further
// requests waiting behind them (both forced to at least 1 worker / 0
// queued).
func newPool(workers, queue int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &pool{
		admit: make(chan struct{}, workers+queue),
		work:  make(chan struct{}, workers),
	}
}

// tryAdmit claims an admission slot; false means the system is saturated
// and the caller must shed the request (429 + Retry-After).
func (p *pool) tryAdmit() bool {
	select {
	case p.admit <- struct{}{}:
		return true
	default:
		return false
	}
}

// releaseAdmit returns an admission slot claimed by tryAdmit.
func (p *pool) releaseAdmit() { <-p.admit }

// acquireWork blocks until a worker slot frees up or ctx is done.
func (p *pool) acquireWork(ctx context.Context) error {
	select {
	case p.work <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// releaseWork returns a worker slot claimed by acquireWork.
func (p *pool) releaseWork() { <-p.work }

// queued approximates the number of admitted requests waiting for a worker
// slot — the admission-queue depth the obs histogram samples.
func (p *pool) queued() int {
	q := len(p.admit) - len(p.work)
	if q < 0 {
		q = 0
	}
	return q
}
