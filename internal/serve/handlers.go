package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"picpredict"
	"picpredict/internal/cli"
	"picpredict/internal/obs"
)

// PredictRequest is the /v1/predict body. Ranks is the only required
// field; everything else defaults from the server configuration.
type PredictRequest struct {
	// Scenario names the trace artefact to predict against (default: the
	// server's first-loaded trace). Workload instead names a pre-generated
	// workload artefact — its ranks/mapping are baked in, so Ranks,
	// Mapping, and Filter are rejected alongside it.
	Scenario string `json:"scenario,omitempty"`
	Workload string `json:"workload,omitempty"`

	// Ranks lists the processor counts to predict (§II: one trace answers
	// every system size).
	Ranks []int `json:"ranks,omitempty"`
	// Mapping selects the mapper (element, bin, hilbert, weighted,
	// ohhelp; default bin); Filter is the projection filter radius
	// (default: 0, real particles only); RelaxedBins and MidpointSplit
	// tune bin mapping.
	Mapping       string  `json:"mapping,omitempty"`
	Filter        float64 `json:"filter,omitempty"`
	RelaxedBins   bool    `json:"relaxed_bins,omitempty"`
	MidpointSplit bool    `json:"midpoint_split,omitempty"`
	// Rebalance is a dynamic load-balancing policy spec ("periodic:K",
	// "threshold:F", "diffusion:F[/R]"; default none). Like Mapping it is a
	// per-query workload parameter — deliberately NOT part of the model key.
	// Requires element mapping; rejected on workload replay (baked in).
	Rebalance string `json:"rebalance,omitempty"`

	// Model selects and configures the Model Generator variant.
	Model ModelParams `json:"model,omitempty"`

	// Machine, TotalElements, N, and FilterElements override the server's
	// platform defaults.
	Machine        string  `json:"machine,omitempty"`
	TotalElements  int     `json:"total_elements,omitempty"`
	N              float64 `json:"n,omitempty"`
	FilterElements float64 `json:"filter_elements,omitempty"`

	// cacheOnly (set from the CacheOnlyHeader, never the JSON body) answers
	// only from resident models: a cold key declines with 409 instead of
	// training. Hedged gate attempts use it so a tail-latency hedge can
	// never trigger a multi-second training run on a replica.
	cacheOnly bool
}

// CacheOnlyHeader marks a predict request that must not start a training
// run. The gate sets it on hedged attempts; a shard without the model
// resident answers 409 immediately.
const CacheOnlyHeader = "X-Picpredict-Cache-Only"

// errColdModel is the sentinel for a cache-only request that missed.
var errColdModel = errors.New("model not resident (cache-only request declined)")

// ModelParams is the model-kind block of a predict request.
type ModelParams struct {
	// Kind is synthetic (default), wallclock, or app.
	Kind string `json:"kind,omitempty"`
	// Fast shrinks the symbolic-regression search; Seed and Noise as in
	// picpredict.TrainOptions.
	Fast  bool    `json:"fast,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	Noise float64 `json:"noise,omitempty"`
}

// PredictResult is one rank count's prediction.
type PredictResult struct {
	Ranks           int     `json:"ranks"`
	TotalSec        float64 `json:"total_sec"`
	ComputeSec      float64 `json:"compute_sec"`
	CommSec         float64 `json:"comm_sec"`
	MeanUtilization float64 `json:"mean_utilization"`
	PeakParticles   int64   `json:"peak_particles"`
	// MigrationSec is the priced rebalance state-transfer total; omitted
	// (0) for static mappings. RebalanceEpochs counts the intervals that
	// actually moved ownership.
	MigrationSec    float64 `json:"migration_sec,omitempty"`
	RebalanceEpochs int     `json:"rebalance_epochs,omitempty"`
}

// PredictResponse is the /v1/predict response body.
type PredictResponse struct {
	Scenario string          `json:"scenario"`
	ModelKey ModelKey        `json:"model_key"`
	Cache    string          `json:"cache"` // "hit" or "miss"
	Results  []PredictResult `json:"results"`
}

// errorBody is every non-200 JSON payload. RequestID carries the
// correlation ID the middleware resolved, so a gate-side failure log and a
// shard-side error body name the same request.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone mid-write; nothing useful to do
}

// writeError emits the structured error body, tagged with r's request ID.
func writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{
		Error:     fmt.Sprintf(format, args...),
		RequestID: RequestIDFrom(r.Context()),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "instance": s.instance})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable, "draining")
	case !s.ready.Load():
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable, "not ready")
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"instance": s.instance,
			"traces":   s.traceNames(),
			"models":   s.registry.Len(),
			"inflight": s.inflight.Load(),
		})
	}
}

func (s *Server) traceNames() []string {
	names := make([]string, 0, len(s.traces))
	for n := range s.traces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.cfg.ModelCapacity,
		"models":   s.registry.Entries(),
	})
}

// handlePredict is the serving hot path: admission control, per-request
// deadline, model registry lookup (training on miss), then one workload
// generation + BSP replay per requested rank count.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.runAdmitted(w, r, func(ctx context.Context) (any, int, error) {
		var req PredictRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err)
		}
		req.cacheOnly = r.Header.Get(CacheOnlyHeader) != ""
		return s.predict(ctx, &req)
	})
}

// runAdmitted funnels one request through the admission pipeline shared by
// /v1/predict and /v1/optimize: shed at saturation (429 + Retry-After),
// bound end to end by the request timeout, wait queued for a worker slot,
// then map the execution error to its status family. fn both decodes and
// executes the request under the worker slot.
func (s *Server) runAdmitted(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context) (any, int, error)) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable, "draining")
		return
	}
	if !s.pool.tryAdmit() {
		s.reg.Counter(obs.ServeRejected).Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusTooManyRequests,
			"saturated: %d executing and %d queued; retry shortly", s.cfg.Workers, s.cfg.Queue)
		return
	}
	defer s.pool.releaseAdmit()
	s.reg.Counter(obs.ServeRequests).Inc()
	s.reg.Histogram(obs.ServeQueueDepth).Observe(int64(s.pool.queued()))
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	stopLatency := s.reg.Timer(obs.ServeLatencyNs).Start()
	defer stopLatency()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Wait (queued) for a worker slot.
	if err := s.pool.acquireWork(ctx); err != nil {
		s.reg.Counter(obs.ServeTimeouts).Inc()
		writeError(w, r, http.StatusGatewayTimeout, "timed out waiting for a worker: %v", err)
		return
	}
	defer s.pool.releaseWork()

	resp, status, err := fn(ctx)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.reg.Counter(obs.ServeTimeouts).Inc()
			writeError(w, r, http.StatusGatewayTimeout, "request timed out")
		case errors.Is(err, errColdModel):
			// Not a fault: the caller asked for cache-only and this shard
			// has not trained the model. Counted apart from serve.errors.
			s.reg.Counter(obs.ServeColdDeclines).Inc()
			writeError(w, r, http.StatusConflict, "%v", err)
		default:
			s.reg.Counter(obs.ServeErrors).Inc()
			writeError(w, r, status, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// predict resolves the request against loaded artefacts and the model
// registry. The returned status is used only when err is non-nil.
func (s *Server) predict(ctx context.Context, req *PredictRequest) (*PredictResponse, int, error) {
	kind, err := picpredict.ParseModelKind(req.Model.Kind)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	var machine *picpredict.MachineSpec
	machineName := req.Machine
	if machineName == "" {
		machineName = s.cfg.Machine
	}
	m, err := picpredict.MachineByName(machineName)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	machine = &m

	q := picpredict.QueryOptions{
		TotalElements:  s.cfg.TotalElements,
		GridN:          s.cfg.GridN,
		FilterElements: s.cfg.FilterElements,
		Machine:        machine,
		Obs:            s.reg,
	}
	if req.TotalElements > 0 {
		q.TotalElements = req.TotalElements
	}
	if req.N > 0 {
		q.GridN = req.N
	}
	if req.FilterElements > 0 {
		q.FilterElements = req.FilterElements
	}

	trainOpts := picpredict.TrainOptions{Fast: req.Model.Fast, Seed: req.Model.Seed, Noise: req.Model.Noise}

	if req.Workload != "" {
		return s.predictWorkload(ctx, req, kind, trainOpts, q)
	}
	return s.predictTrace(ctx, req, kind, trainOpts, q)
}

// predictTrace serves the generate-then-predict path over a trace artefact.
func (s *Server) predictTrace(ctx context.Context, req *PredictRequest, kind picpredict.ModelKind, trainOpts picpredict.TrainOptions, q picpredict.QueryOptions) (*PredictResponse, int, error) {
	name := req.Scenario
	if name == "" {
		name = s.defaultTrace
	}
	art := s.traces[name]
	if art == nil {
		return nil, http.StatusNotFound, fmt.Errorf("unknown scenario %q (loaded: %v)", name, s.traceNames())
	}
	if len(req.Ranks) == 0 {
		return nil, http.StatusBadRequest, errors.New("ranks is required (e.g. [1044, 2088])")
	}
	for _, r := range req.Ranks {
		if r <= 0 {
			return nil, http.StatusBadRequest, fmt.Errorf("rank count %d is not positive", r)
		}
	}
	mapping, err := picpredict.ParseMappingKind(req.Mapping)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	rebal, err := cli.ParseRebalance("rebalance", req.Rebalance)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if rebal != "" && rebal != "none" && mapping != picpredict.MappingElement {
		return nil, http.StatusBadRequest, fmt.Errorf("rebalance %q requires mapping \"element\", got %q", rebal, mapping)
	}
	if mapping != picpredict.MappingBin {
		if _, _, ok := art.tr.Mesh(); !ok {
			return nil, http.StatusBadRequest, fmt.Errorf("mapping %q needs the application element grid; start picserve with -elements ex,ey,ez", mapping)
		}
	}

	models, hit, err := s.models(ctx, art.crc, kind, trainOpts, req.cacheOnly)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}

	resp := &PredictResponse{
		Scenario: name,
		ModelKey: Fingerprint(art.crc, kind, trainOpts),
		Cache:    cacheLabel(hit),
	}
	for _, ranks := range req.Ranks {
		if err := ctx.Err(); err != nil {
			return nil, http.StatusGatewayTimeout, err
		}
		q.Workload = picpredict.WorkloadOptions{
			Ranks:         ranks,
			Mapping:       mapping,
			Rebalance:     rebal,
			FilterRadius:  req.Filter,
			RelaxedBins:   req.RelaxedBins,
			MidpointSplit: req.MidpointSplit,
		}
		wl, pred, err := picpredict.PredictFromTrace(ctx, art.tr, models, q)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		resp.Results = append(resp.Results, resultOf(wl, pred))
	}
	return resp, http.StatusOK, nil
}

// predictWorkload serves the replay path over a pre-generated workload.
func (s *Server) predictWorkload(ctx context.Context, req *PredictRequest, kind picpredict.ModelKind, trainOpts picpredict.TrainOptions, q picpredict.QueryOptions) (*PredictResponse, int, error) {
	if len(req.Ranks) != 0 || req.Mapping != "" || req.Filter != 0 || req.Rebalance != "" {
		return nil, http.StatusBadRequest, errors.New("workload replay: ranks/mapping/rebalance/filter are baked into the artefact; omit them")
	}
	art := s.workloads[req.Workload]
	if art == nil {
		return nil, http.StatusNotFound, fmt.Errorf("unknown workload %q", req.Workload)
	}
	models, hit, err := s.models(ctx, art.crc, kind, trainOpts, req.cacheOnly)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	if err := ctx.Err(); err != nil {
		return nil, http.StatusGatewayTimeout, err
	}
	pred, err := picpredict.PredictWorkload(models, art.wl, q)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	return &PredictResponse{
		Scenario: req.Workload,
		ModelKey: Fingerprint(art.crc, kind, trainOpts),
		Cache:    cacheLabel(hit),
		Results:  []PredictResult{resultOf(art.wl, pred)},
	}, http.StatusOK, nil
}

// models resolves one trained model set through the registry. cacheOnly
// answers from resident entries only, failing cold keys with errColdModel
// instead of training.
func (s *Server) models(ctx context.Context, crc string, kind picpredict.ModelKind, opts picpredict.TrainOptions, cacheOnly bool) (picpredict.Models, bool, error) {
	key := Fingerprint(crc, kind, opts)
	if cacheOnly {
		m, ok, err := s.registry.Peek(ctx, key)
		if err != nil {
			return m, ok, err
		}
		if !ok {
			return m, false, errColdModel
		}
		return m, true, nil
	}
	return s.registry.GetOrTrain(ctx, key, kind, func(trainCtx context.Context) (picpredict.Models, error) {
		return s.trainer(trainCtx, kind, opts)
	})
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func resultOf(wl *picpredict.Workload, pred *picpredict.Prediction) PredictResult {
	var comp, comm float64
	for k := range pred.Compute {
		comp += pred.Compute[k]
		comm += pred.Comm[k]
	}
	return PredictResult{
		Ranks:           pred.Ranks,
		TotalSec:        pred.Total,
		ComputeSec:      comp,
		CommSec:         comm,
		MeanUtilization: pred.MeanUtilization(),
		PeakParticles:   wl.Peak(),
		MigrationSec:    pred.MigrationSec(),
		RebalanceEpochs: wl.MigrationEpochs(),
	}
}
