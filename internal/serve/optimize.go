package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"picpredict"
	"picpredict/internal/sweep"
)

// OptimizeRequest is the /v1/optimize body: a configuration grid to price
// against one trace artefact. Ranks is a grid spec ("8,64,512-8352:x2");
// the other axes default to the paper baselines. Every model the sweep
// trains lands in the registry, so an optimize call warms the cache the
// point /v1/predict path answers from.
type OptimizeRequest struct {
	// Scenario names the trace artefact to sweep over (default: the
	// server's first-loaded trace).
	Scenario string `json:"scenario,omitempty"`

	// Ranks is the rank-axis grid spec (required); Mappings, Machines,
	// Kinds, and Rebalances are the other axes (defaults bin / quartz /
	// synthetic / none). Non-none rebalance entries require "element" on the
	// mapping axis and price only element-mapping configurations.
	Ranks      string   `json:"ranks"`
	Mappings   []string `json:"mappings,omitempty"`
	Machines   []string `json:"machines,omitempty"`
	Kinds      []string `json:"model_kinds,omitempty"`
	Rebalances []string `json:"rebalances,omitempty"`

	// Model carries the training knobs shared by every kind (Fast, Seed,
	// Noise). Setting Model.Kind is shorthand for a one-kind Kinds axis;
	// setting both is rejected.
	Model ModelParams `json:"model,omitempty"`

	// Filter, RelaxedBins, and MidpointSplit configure workload generation
	// exactly as in PredictRequest — shared by every configuration.
	Filter        float64 `json:"filter,omitempty"`
	RelaxedBins   bool    `json:"relaxed_bins,omitempty"`
	MidpointSplit bool    `json:"midpoint_split,omitempty"`

	// TotalElements, N, and FilterElements override the server's platform
	// defaults, as in PredictRequest.
	TotalElements  int     `json:"total_elements,omitempty"`
	N              float64 `json:"n,omitempty"`
	FilterElements float64 `json:"filter_elements,omitempty"`

	// CostWeight tunes the knee objective (default 1); Top truncates the
	// returned frontier (default 32, 0 takes the default).
	CostWeight float64 `json:"cost_weight,omitempty"`
	Top        int     `json:"top,omitempty"`

	// cacheOnly (from CacheOnlyHeader): resolve models from resident
	// registry entries only, declining cold kinds with 409 — a hedged
	// optimize must never trigger a training run.
	cacheOnly bool
}

// defaultOptimizeTop bounds the frontier an optimize response carries when
// the request does not say — a sweep can price thousands of points, but a
// client usually reads the first page.
const defaultOptimizeTop = 32

// OptimizeModel records one model set the sweep resolved: its registry key
// and whether the lookup hit the cache.
type OptimizeModel struct {
	Kind     string   `json:"kind"`
	ModelKey ModelKey `json:"model_key"`
	Cache    string   `json:"cache"` // "hit" or "miss"
}

// OptimizeResponse is the /v1/optimize response body.
type OptimizeResponse struct {
	Scenario string          `json:"scenario"`
	Models   []OptimizeModel `json:"models"`
	Sweep    *sweep.Result   `json:"sweep"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.runAdmitted(w, r, func(ctx context.Context) (any, int, error) {
		var req OptimizeRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err)
		}
		req.cacheOnly = r.Header.Get(CacheOnlyHeader) != ""
		return s.optimize(ctx, &req)
	})
}

// optimize resolves the grid against a loaded trace and runs the sweep
// engine over the model registry.
func (s *Server) optimize(ctx context.Context, req *OptimizeRequest) (*OptimizeResponse, int, error) {
	name := req.Scenario
	if name == "" {
		name = s.defaultTrace
	}
	art := s.traces[name]
	if art == nil {
		return nil, http.StatusNotFound, fmt.Errorf("unknown scenario %q (loaded: %v)", name, s.traceNames())
	}
	if req.Ranks == "" {
		return nil, http.StatusBadRequest, errors.New(`ranks is required (a grid spec, e.g. "8,64,512-8352:x2")`)
	}
	ranks, err := sweep.ParseRanks(req.Ranks)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	kinds := req.Kinds
	if req.Model.Kind != "" {
		if len(kinds) != 0 {
			return nil, http.StatusBadRequest, errors.New("model.kind and model_kinds are exclusive; put every kind in model_kinds")
		}
		kinds = []string{req.Model.Kind}
	}
	grid := sweep.Grid{Ranks: ranks}
	for _, m := range req.Mappings {
		grid.Mappings = append(grid.Mappings, picpredict.MappingKind(m))
	}
	grid.Machines = req.Machines
	for _, k := range kinds {
		grid.Kinds = append(grid.Kinds, picpredict.ModelKind(k))
	}
	grid.Rebalances = req.Rebalances
	for _, m := range grid.Mappings {
		if m != picpredict.MappingBin && m != "" {
			if _, _, ok := art.tr.Mesh(); !ok {
				return nil, http.StatusBadRequest, fmt.Errorf("mapping %q needs the application element grid; start picserve with -elements ex,ey,ez", m)
			}
			break
		}
	}

	opts := sweep.Options{
		Filter:         req.Filter,
		RelaxedBins:    req.RelaxedBins,
		MidpointSplit:  req.MidpointSplit,
		Workers:        s.cfg.SweepWorkers,
		TotalElements:  s.cfg.TotalElements,
		GridN:          s.cfg.GridN,
		FilterElements: s.cfg.FilterElements,
		CostWeight:     req.CostWeight,
		Top:            req.Top,
		Obs:            s.reg,
	}
	if req.TotalElements > 0 {
		opts.TotalElements = req.TotalElements
	}
	if req.N > 0 {
		opts.GridN = req.N
	}
	if req.FilterElements > 0 {
		opts.FilterElements = req.FilterElements
	}
	if opts.Top == 0 {
		opts.Top = defaultOptimizeTop
	}

	// The engine resolves one model set per distinct kind, sequentially,
	// through the registry — every sweep therefore leaves its models
	// resident for later point predicts (and a cacheOnly sweep can only
	// use what is already there).
	trainOpts := picpredict.TrainOptions{Fast: req.Model.Fast, Seed: req.Model.Seed, Noise: req.Model.Noise}
	var resolved []OptimizeModel
	modelsFn := func(ctx context.Context, kind picpredict.ModelKind) (picpredict.Models, error) {
		m, hit, err := s.models(ctx, art.crc, kind, trainOpts, req.cacheOnly)
		if err != nil {
			return m, err
		}
		resolved = append(resolved, OptimizeModel{
			Kind:     string(kind),
			ModelKey: Fingerprint(art.crc, kind, trainOpts),
			Cache:    cacheLabel(hit),
		})
		return m, nil
	}

	res, err := sweep.Run(ctx, art.tr, grid, opts, modelsFn)
	if err != nil {
		switch {
		case errors.Is(err, sweep.ErrSpec):
			return nil, http.StatusBadRequest, err
		case errors.Is(err, errColdModel):
			return nil, 0, err // status picked by the shared cold-decline branch
		default:
			return nil, http.StatusInternalServerError, err
		}
	}
	return &OptimizeResponse{Scenario: name, Models: resolved, Sweep: res}, http.StatusOK, nil
}
