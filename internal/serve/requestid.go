package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
)

// Request-ID propagation: every request carries an X-Request-ID — the
// caller's (a picgate routing attempts to this shard forwards its own), or
// one minted here from the server's random instance tag plus a sequence
// number. The ID is echoed in the response header and in every JSON error
// body, and the instance tag is recorded in the run manifest
// (cmd/picserve's config block), so one gate-side ID can be chased through
// shard logs and manifests after the fact.

// ridKey is the context key carrying the request ID to handlers.
type ridKey struct{}

// RequestIDFrom returns the request ID the middleware attached to ctx (""
// outside a request).
func RequestIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey{}).(string)
	return rid
}

// newInstanceID mints the server's random instance tag.
func newInstanceID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "serve-0"
	}
	return "serve-" + hex.EncodeToString(b[:])
}

// Instance returns the server's instance tag.
func (s *Server) Instance() string { return s.instance }

// withRequestID is the outermost middleware: resolve the request ID, echo
// it, and hand it to the handlers through the context.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = fmt.Sprintf("%s-%06d", s.instance, s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", rid)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ridKey{}, rid)))
	})
}
