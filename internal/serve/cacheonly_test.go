package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"picpredict"
	"picpredict/internal/obs"
)

// postCacheOnly posts a predict with the cache-only header set.
func postCacheOnly(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/predict", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(CacheOnlyHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// TestCacheOnlyPredict pins the contract behind hedged gate attempts: a
// cache-only request never trains — cold keys decline with 409 (counted as
// cold_declines, not errors), warm keys answer normally.
func TestCacheOnlyPredict(t *testing.T) {
	s, st := newTestServer(t, Config{Workers: 2, Obs: obs.New()}, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"scenario":"test","ranks":[4],"model":{"fast":true,"seed":11}}`

	status, raw := postCacheOnly(t, ts.URL, body)
	if status != http.StatusConflict {
		t.Fatalf("cold cache-only predict: status %d (%s), want 409", status, raw)
	}
	key := Fingerprint(testCRC, picpredict.ModelSynthetic, picpredict.TrainOptions{Fast: true, Seed: 11})
	if n := st.count(key); n != 0 {
		t.Fatalf("cache-only request trained %d times, want 0", n)
	}
	if v := s.reg.Counter(obs.ServeColdDeclines).Value(); v != 1 {
		t.Errorf("serve.cold_declines = %d, want 1", v)
	}
	if v := s.reg.Counter(obs.ServeErrors).Value(); v != 0 {
		t.Errorf("serve.errors = %d, want 0 — a cold decline is not a fault", v)
	}

	// Warm the key through the normal path, then cache-only must serve it.
	if status, raw := postPredict(t, ts.URL, body); status != http.StatusOK {
		t.Fatalf("warming predict: status %d (%s)", status, raw)
	}
	status, raw = postCacheOnly(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("warm cache-only predict: status %d (%s), want 200", status, raw)
	}
	var resp PredictResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "hit" {
		t.Errorf("warm cache-only predict reported cache=%q, want hit", resp.Cache)
	}
	if n := st.count(key); n != 1 {
		t.Errorf("key trained %d times total, want exactly 1 (the warming request)", n)
	}
}
