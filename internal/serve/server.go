package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"picpredict"
	"picpredict/internal/obs"
)

// Config sizes and defaults a Server. Zero values take the documented
// defaults at New time.
type Config struct {
	// Workers is the number of concurrent prediction executions
	// (default 4); Queue is how many admitted requests may wait behind
	// them (default 4×Workers). A request arriving with Workers executing
	// and Queue waiting is shed with 429 + Retry-After.
	Workers int
	Queue   int
	// RequestTimeout bounds one /v1/predict request end to end, queue
	// wait included (default 60s).
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain after shutdown begins
	// (default 30s); in-flight requests still running when it expires are
	// abandoned.
	DrainTimeout time.Duration
	// ModelCapacity bounds the model registry's LRU (default 8 trained
	// model sets).
	ModelCapacity int
	// SweepWorkers is each /v1/optimize sweep's internal fan-out width
	// (default 4). An optimize request still occupies exactly one admission
	// worker slot — SweepWorkers trades that slot's latency against CPU.
	SweepWorkers int

	// TotalElements, GridN, FilterElements, and Machine are the platform
	// defaults a request may omit (defaults 16384, 4, 1, quartz).
	TotalElements  int
	GridN          float64
	FilterElements float64
	Machine        string

	// Obs (nil-safe) receives the serving metrics named in
	// internal/obs/names.go.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.Queue == 0 {
		c.Queue = 4 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.ModelCapacity < 1 {
		c.ModelCapacity = 8
	}
	if c.SweepWorkers < 1 {
		c.SweepWorkers = 4
	}
	if c.TotalElements <= 0 {
		c.TotalElements = 16384
	}
	if c.GridN <= 0 {
		c.GridN = 4
	}
	if c.FilterElements <= 0 {
		c.FilterElements = 1
	}
	if c.Machine == "" {
		c.Machine = "quartz"
	}
	return c
}

// traceArtefact is one loaded trace the server predicts against.
type traceArtefact struct {
	name string
	tr   *picpredict.Trace
	crc  string // content checksum, folded into model-registry keys
}

// workloadArtefact is one pre-generated workload (wlgen -save) the server
// replays directly, skipping workload generation.
type workloadArtefact struct {
	name string
	wl   *picpredict.Workload
	crc  string
}

// trainerFunc trains a model set; swapped out by tests to avoid real
// training runs.
type trainerFunc func(ctx context.Context, kind picpredict.ModelKind, opts picpredict.TrainOptions) (picpredict.Models, error)

// Server is the long-running prediction service: loaded artefacts, the
// model registry, the admission-controlled worker pool, and the HTTP
// endpoints over them. Build one with New, register artefacts with
// AddTrace/AddWorkload, then either run the full lifecycle with Serve or
// mount Handler on an external server (tests use httptest).
type Server struct {
	cfg Config
	reg *obs.Registry

	traces       map[string]*traceArtefact
	workloads    map[string]*workloadArtefact
	defaultTrace string

	registry   *Registry
	cancelLife context.CancelFunc
	pool       *pool
	trainer    trainerFunc

	// instance tags this process in generated request IDs and the run
	// manifest; reqSeq numbers the IDs minted here.
	instance string
	reqSeq   atomic.Int64

	ready    atomic.Bool
	draining atomic.Bool
	inflight atomic.Int64

	mux     *http.ServeMux
	handler http.Handler
}

// New builds a Server from cfg (zero fields defaulted). Register at least
// one trace with AddTrace before serving; /readyz reports 503 until
// MarkReady (Serve calls it once the listener is accepting).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	life, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Obs,
		traces:     make(map[string]*traceArtefact),
		workloads:  make(map[string]*workloadArtefact),
		registry:   NewRegistry(life, cfg.ModelCapacity, cfg.Obs),
		cancelLife: cancel,
		pool:       newPool(cfg.Workers, cfg.Queue),
		trainer: func(_ context.Context, kind picpredict.ModelKind, opts picpredict.TrainOptions) (picpredict.Models, error) {
			return picpredict.TrainModelsKind(kind, opts)
		},
	}
	s.instance = newInstanceID()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.handler = s.withRequestID(s.mux)
	return s
}

// AddTrace registers a loaded trace artefact under name; crc is its content
// checksum (it keys the model registry). The first trace added is the
// default scenario for requests that name none.
func (s *Server) AddTrace(name string, tr *picpredict.Trace, crc string) error {
	if name == "" {
		return errors.New("serve: trace artefact needs a name")
	}
	if _, dup := s.traces[name]; dup {
		return fmt.Errorf("serve: duplicate trace artefact %q", name)
	}
	s.traces[name] = &traceArtefact{name: name, tr: tr, crc: crc}
	if s.defaultTrace == "" {
		s.defaultTrace = name
	}
	return nil
}

// AddWorkload registers a pre-generated workload artefact under name.
func (s *Server) AddWorkload(name string, wl *picpredict.Workload, crc string) error {
	if name == "" {
		return errors.New("serve: workload artefact needs a name")
	}
	if _, dup := s.workloads[name]; dup {
		return fmt.Errorf("serve: duplicate workload artefact %q", name)
	}
	s.workloads[name] = &workloadArtefact{name: name, wl: wl, crc: crc}
	return nil
}

// Handler returns the service's HTTP handler — the four endpoints behind
// the request-ID middleware, plus admission control. Mount it on any
// server; Serve wires it to a listener with the full lifecycle.
func (s *Server) Handler() http.Handler { return s.handler }

// MarkReady flips /readyz to 200. Serve calls it automatically.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Serve runs the service on ln until ctx is cancelled (SIGTERM via
// cli.Context), then drains gracefully: /readyz flips to 503 so load
// balancers stop routing, the listener closes, in-flight requests run to
// completion (bounded by DrainTimeout), and in-flight training is
// cancelled. A nil return means a clean drain — the caller can flush its
// obs manifest and exit 0.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if len(s.traces) == 0 {
		return errors.New("serve: no trace artefacts loaded")
	}
	httpSrv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.MarkReady()
	errCh := make(chan error, 1)
	//lint:allow goleak Serve returns when ln closes in the Shutdown below; errCh is buffered so the send never blocks
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		// The listener failed out from under us; not a drain.
		s.ready.Store(false)
		s.cancelLife()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.ready.Store(false)
	stopDrain := s.reg.Timer(obs.ServeDrainNs).Start()
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := httpSrv.Shutdown(drainCtx)
	<-errCh // always http.ErrServerClosed once Shutdown begins
	stopDrain()
	s.cancelLife()
	if err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// Close releases the server's resources without a drain (tests that never
// call Serve). Idempotent.
func (s *Server) Close() { s.cancelLife() }
