// Package serve is the long-running prediction service behind cmd/picserve:
// a model registry (trained kernel-model sets keyed by artefact × training
// configuration, LRU-bounded, singleflight-deduplicated), a bounded worker
// pool with queue-depth admission control, and the HTTP handlers that
// expose prediction queries over loaded trace/workload artefacts.
//
// The paper's value proposition — trained kernel models plus the BSP
// simulator answer what-if questions far faster than re-running the
// application — is exactly the shape of an inference service: load the
// artefacts once, train a model per configuration once, then serve every
// "how would this run at R ranks on machine M?" query from memory.
package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"picpredict"
	"picpredict/internal/obs"
)

// TrainFunc produces the model set for one registry key. The registry
// invokes it at most once per key at a time (singleflight) on its own
// lifecycle context, never a request context — a cancelled request must not
// abort a training run other requests are waiting on.
type TrainFunc func(ctx context.Context) (picpredict.Models, error)

// ModelKey is the SHA-256 fingerprint identifying one trained model
// configuration: artefact checksum × model kind × training options.
type ModelKey string

// Fingerprint derives the registry key for training kind-variant models
// with opts against the artefact whose content checksum is artefactCRC.
// Every field that changes what the Model Generator produces is folded in;
// anything else (platform, machine, ranks) deliberately is not — those vary
// per query over the same trained models.
func Fingerprint(artefactCRC string, kind picpredict.ModelKind, opts picpredict.TrainOptions) ModelKey {
	h := sha256.New()
	fmt.Fprintf(h, "artefact=%s|kind=%s|noise=%g|seed=%d|wallclock=%t|fast=%t",
		artefactCRC, kind, opts.Noise, opts.Seed, opts.WallClock, opts.Fast)
	return ModelKey(hex.EncodeToString(h.Sum(nil)))
}

// entry is one registry slot. ready is closed when training finishes;
// before that, models/err/trainNs must not be read. Failed entries are
// removed from the registry before ready closes, so an error is only ever
// seen by the waiters already holding the entry — the next request retrains.
type entry struct {
	key  ModelKey
	kind picpredict.ModelKind
	elem *list.Element

	ready   chan struct{}
	models  picpredict.Models
	err     error
	trainNs int64

	// mutable under Registry.mu.
	hits int64
}

// Registry is the model cache at the heart of the serving layer: trained
// model sets in a size-bounded LRU with singleflight deduplication, so N
// concurrent requests for an untrained configuration trigger exactly one
// training run and the hot configurations of a long-running server stay
// resident.
type Registry struct {
	capacity int
	life     context.Context
	reg      *obs.Registry

	mu      sync.Mutex
	entries map[ModelKey]*entry
	order   *list.List // front = most recently used
}

// NewRegistry returns a registry holding at most capacity trained model
// sets (minimum 1). Training runs on ctx — cancel it on server shutdown to
// abort in-flight training. reg (nil-safe) receives hit/miss/eviction
// counters and training timings.
func NewRegistry(ctx context.Context, capacity int, reg *obs.Registry) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	return &Registry{
		capacity: capacity,
		life:     ctx,
		reg:      reg,
		entries:  make(map[ModelKey]*entry),
		order:    list.New(),
	}
}

// GetOrTrain returns the models for key, training them with train on a
// miss. Concurrent callers with the same key collapse onto one training
// run: the first starts it, the rest wait on the same entry. hit reports
// whether an entry (ready or in flight) already existed. A cancelled ctx
// abandons the wait without aborting the training run.
func (r *Registry) GetOrTrain(ctx context.Context, key ModelKey, kind picpredict.ModelKind, train TrainFunc) (m picpredict.Models, hit bool, err error) {
	r.mu.Lock()
	if e := r.entries[key]; e != nil {
		r.order.MoveToFront(e.elem)
		e.hits++
		r.mu.Unlock()
		r.reg.Counter(obs.ServeCacheHits).Inc()
		return r.wait(ctx, e)
	}
	e := &entry{key: key, kind: kind, ready: make(chan struct{})}
	e.elem = r.order.PushFront(e)
	r.entries[key] = e
	r.evictLocked()
	r.mu.Unlock()
	r.reg.Counter(obs.ServeCacheMisses).Inc()

	//lint:allow goleak train runs to completion and closes e.ready; waiters join via wait(ctx, e), so the run is bounded by the training itself
	go r.train(e, train)
	m, _, err = r.wait(ctx, e)
	return m, false, err
}

// Peek returns the models for key without ever starting a training run: a
// resident entry (ready or in flight) is joined exactly like a hit, an
// absent key reports ok=false immediately. This is the cache-only path
// behind hedged gate attempts — a hedge exists to shave tail latency, so it
// must never pay a cold training bill on a replica.
func (r *Registry) Peek(ctx context.Context, key ModelKey) (m picpredict.Models, ok bool, err error) {
	r.mu.Lock()
	e := r.entries[key]
	if e == nil {
		r.mu.Unlock()
		return picpredict.Models{}, false, nil
	}
	r.order.MoveToFront(e.elem)
	e.hits++
	r.mu.Unlock()
	r.reg.Counter(obs.ServeCacheHits).Inc()
	m, _, err = r.wait(ctx, e)
	return m, true, err
}

// train runs one training job for e and publishes the result. On failure
// the entry is removed before ready closes, so only the waiters already
// attached observe the error and the key retrains on its next request.
func (r *Registry) train(e *entry, train TrainFunc) {
	t0 := time.Now()
	m, err := train(r.life)
	e.trainNs = time.Since(t0).Nanoseconds()
	r.reg.Timer(obs.ServeTrainNs).Observe(time.Duration(e.trainNs))
	r.mu.Lock()
	e.models, e.err = m, err
	if err != nil {
		r.removeLocked(e)
	}
	r.mu.Unlock()
	close(e.ready)
}

// wait blocks until e is trained or ctx is cancelled.
func (r *Registry) wait(ctx context.Context, e *entry) (picpredict.Models, bool, error) {
	select {
	case <-e.ready:
		return e.models, true, e.err
	case <-ctx.Done():
		return picpredict.Models{}, true, ctx.Err()
	}
}

// evictLocked enforces the capacity bound, dropping least-recently-used
// *completed* entries. In-flight entries are skipped — evicting one would
// let a concurrent request for the same key start a duplicate training run,
// exactly what singleflight exists to prevent — so the registry may briefly
// exceed capacity while more than capacity trainings are in flight.
func (r *Registry) evictLocked() {
	for len(r.entries) > r.capacity {
		evicted := false
		for el := r.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			select {
			case <-e.ready:
			default:
				continue // in flight; skip
			}
			r.removeLocked(e)
			r.reg.Counter(obs.ServeCacheEvictions).Inc()
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// removeLocked drops e from the map and LRU order. Idempotent: a failed
// entry may already be gone when eviction walks the list.
func (r *Registry) removeLocked(e *entry) {
	if _, ok := r.entries[e.key]; !ok {
		return
	}
	delete(r.entries, e.key)
	r.order.Remove(e.elem)
}

// Len returns the number of resident entries (in-flight included).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// EntryInfo is one registry slot frozen for /v1/models.
type EntryInfo struct {
	Key   ModelKey             `json:"key"`
	Kind  picpredict.ModelKind `json:"kind"`
	State string               `json:"state"` // "training" or "ready"
	Hits  int64                `json:"hits"`
	// TrainMs is the training wall time in milliseconds (0 while training).
	TrainMs float64 `json:"train_ms"`
}

// Entries snapshots the registry in most-recently-used-first order.
func (r *Registry) Entries() []EntryInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EntryInfo, 0, len(r.entries))
	for el := r.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		info := EntryInfo{Key: e.key, Kind: e.kind, State: "training", Hits: e.hits}
		select {
		case <-e.ready:
			info.State = "ready"
			info.TrainMs = float64(e.trainNs) / 1e6
		default:
		}
		out = append(out, info)
	}
	return out
}
