package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"picpredict"
	"picpredict/internal/obs"
)

// TestSingleflightCollapses proves the registry's core guarantee: N
// concurrent requests for one untrained configuration trigger exactly one
// training run, and every caller gets its result.
func TestSingleflightCollapses(t *testing.T) {
	reg := obs.New()
	r := NewRegistry(context.Background(), 4, reg)
	var trains atomic.Int64
	train := func(ctx context.Context) (picpredict.Models, error) {
		if ctx.Err() != nil {
			return picpredict.Models{}, ctx.Err()
		}
		trains.Add(1)
		time.Sleep(50 * time.Millisecond) // widen the collapse window
		return picpredict.Models{}, nil
	}
	key := Fingerprint("crc-a", picpredict.ModelSynthetic, picpredict.TrainOptions{Seed: 1})

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := r.GetOrTrain(context.Background(), key, picpredict.ModelSynthetic, train)
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := trains.Load(); got != 1 {
		t.Fatalf("%d concurrent identical misses ran %d training runs, want exactly 1", n, got)
	}
	if hits := reg.Counter(obs.ServeCacheHits).Value(); hits != n-1 {
		t.Errorf("cache hits = %d, want %d (every caller but the first)", hits, n-1)
	}
	if misses := reg.Counter(obs.ServeCacheMisses).Value(); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
}

// TestLRUEviction exercises the capacity bound: the least-recently-used
// completed entry is dropped, and a re-request retrains it.
func TestLRUEviction(t *testing.T) {
	reg := obs.New()
	r := NewRegistry(context.Background(), 2, reg)
	var trains atomic.Int64
	train := func(ctx context.Context) (picpredict.Models, error) {
		if ctx.Err() != nil {
			return picpredict.Models{}, ctx.Err()
		}
		trains.Add(1)
		return picpredict.Models{}, nil
	}
	key := func(s string) ModelKey {
		return Fingerprint(s, picpredict.ModelSynthetic, picpredict.TrainOptions{})
	}

	for _, k := range []string{"a", "b", "c"} {
		if _, hit, err := r.GetOrTrain(context.Background(), key(k), picpredict.ModelSynthetic, train); err != nil || hit {
			t.Fatalf("training %s: hit=%t err=%v", k, hit, err)
		}
	}
	if got := r.Len(); got != 2 {
		t.Fatalf("registry holds %d entries over capacity 2", got)
	}
	if ev := reg.Counter(obs.ServeCacheEvictions).Value(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// "a" was least recently used and must be gone; re-requesting retrains
	// (and evicts "b", now the LRU of [c, b]).
	if _, hit, err := r.GetOrTrain(context.Background(), key("a"), picpredict.ModelSynthetic, train); err != nil || hit {
		t.Fatalf("re-request of evicted key: hit=%t err=%v, want a miss", hit, err)
	}
	if got := trains.Load(); got != 4 {
		t.Fatalf("training runs = %d, want 4 (a, b, c, a again)", got)
	}
	// "c" survived both evictions: touching it is a hit.
	if _, hit, err := r.GetOrTrain(context.Background(), key("c"), picpredict.ModelSynthetic, train); err != nil || !hit {
		t.Fatalf("surviving key: hit=%t err=%v, want a hit", hit, err)
	}
	if ev := reg.Counter(obs.ServeCacheEvictions).Value(); ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
}

// TestFailedTrainingNotCached: a failed run must not poison the key — only
// the waiters attached to the failed attempt see its error, and the next
// request retrains.
func TestFailedTrainingNotCached(t *testing.T) {
	r := NewRegistry(context.Background(), 2, nil)
	var trains atomic.Int64
	boom := errors.New("boom")
	failing := func(ctx context.Context) (picpredict.Models, error) {
		if ctx.Err() != nil {
			return picpredict.Models{}, ctx.Err()
		}
		trains.Add(1)
		return picpredict.Models{}, boom
	}
	key := Fingerprint("crc", picpredict.ModelSynthetic, picpredict.TrainOptions{})
	if _, _, err := r.GetOrTrain(context.Background(), key, picpredict.ModelSynthetic, failing); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("failed entry still resident (len %d)", got)
	}
	ok := func(ctx context.Context) (picpredict.Models, error) {
		if ctx.Err() != nil {
			return picpredict.Models{}, ctx.Err()
		}
		trains.Add(1)
		return picpredict.Models{}, nil
	}
	if _, hit, err := r.GetOrTrain(context.Background(), key, picpredict.ModelSynthetic, ok); err != nil || hit {
		t.Fatalf("retry after failure: hit=%t err=%v, want a fresh miss", hit, err)
	}
	if got := trains.Load(); got != 2 {
		t.Fatalf("training runs = %d, want 2", got)
	}
}

// TestWaitCancellation: a caller abandoning the wait does not abort the
// training run other callers depend on.
func TestWaitCancellation(t *testing.T) {
	r := NewRegistry(context.Background(), 2, nil)
	release := make(chan struct{})
	train := func(ctx context.Context) (picpredict.Models, error) {
		select {
		case <-release:
			return picpredict.Models{}, nil
		case <-ctx.Done():
			return picpredict.Models{}, ctx.Err()
		}
	}
	key := Fingerprint("crc", picpredict.ModelSynthetic, picpredict.TrainOptions{})

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, _, err := r.GetOrTrain(context.Background(), key, picpredict.ModelSynthetic, train)
		done <- err
	}()
	<-started

	// A second caller with an already-cancelled context leaves immediately.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.GetOrTrain(cancelled, key, picpredict.ModelSynthetic, train); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("patient caller: %v", err)
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("entry count = %d, want 1 (training survived the cancelled waiter)", got)
	}
}

// TestEntriesSnapshot checks the /v1/models view: states, hit counts, MRU
// order.
func TestEntriesSnapshot(t *testing.T) {
	r := NewRegistry(context.Background(), 4, nil)
	train := func(ctx context.Context) (picpredict.Models, error) {
		if ctx.Err() != nil {
			return picpredict.Models{}, ctx.Err()
		}
		return picpredict.Models{}, nil
	}
	ka := Fingerprint("a", picpredict.ModelSynthetic, picpredict.TrainOptions{})
	kb := Fingerprint("b", picpredict.ModelWallClock, picpredict.TrainOptions{})
	for _, k := range []struct {
		key  ModelKey
		kind picpredict.ModelKind
	}{{ka, picpredict.ModelSynthetic}, {kb, picpredict.ModelWallClock}} {
		if _, _, err := r.GetOrTrain(context.Background(), k.key, k.kind, train); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so it is most recently used.
	if _, hit, err := r.GetOrTrain(context.Background(), ka, picpredict.ModelSynthetic, train); err != nil || !hit {
		t.Fatalf("hit=%t err=%v", hit, err)
	}
	es := r.Entries()
	if len(es) != 2 {
		t.Fatalf("entries = %d, want 2", len(es))
	}
	if es[0].Key != ka || es[0].Hits != 1 || es[0].State != "ready" {
		t.Errorf("MRU entry = %+v, want key a, 1 hit, ready", es[0])
	}
	if es[1].Key != kb || es[1].Kind != picpredict.ModelWallClock {
		t.Errorf("LRU entry = %+v, want key b (wallclock)", es[1])
	}
}

// TestFingerprintSensitivity: every training-relevant field changes the
// key; platform/query fields do not exist in it by construction.
func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint("crc", picpredict.ModelSynthetic, picpredict.TrainOptions{Seed: 1, Fast: true})
	variants := []ModelKey{
		Fingerprint("other", picpredict.ModelSynthetic, picpredict.TrainOptions{Seed: 1, Fast: true}),
		Fingerprint("crc", picpredict.ModelWallClock, picpredict.TrainOptions{Seed: 1, Fast: true}),
		Fingerprint("crc", picpredict.ModelSynthetic, picpredict.TrainOptions{Seed: 2, Fast: true}),
		Fingerprint("crc", picpredict.ModelSynthetic, picpredict.TrainOptions{Seed: 1}),
		Fingerprint("crc", picpredict.ModelSynthetic, picpredict.TrainOptions{Seed: 1, Fast: true, Noise: 0.2}),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base key", i)
		}
	}
	if again := Fingerprint("crc", picpredict.ModelSynthetic, picpredict.TrainOptions{Seed: 1, Fast: true}); again != base {
		t.Error("fingerprint is not deterministic")
	}
}
