package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"picpredict/internal/obs"
)

// TestRequestIDEcho pins the correlation contract picgate relies on: a
// caller-supplied X-Request-ID is echoed back verbatim, and a request
// without one gets an instance-prefixed ID minted.
func TestRequestIDEcho(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, Obs: obs.New()}, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "gate-beef-000042")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "gate-beef-000042" {
		t.Fatalf("echoed request ID %q, want the caller's", got)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	minted := resp2.Header.Get("X-Request-ID")
	if !strings.HasPrefix(minted, s.Instance()+"-") {
		t.Fatalf("minted ID %q lacks instance prefix %q", minted, s.Instance())
	}
}

// TestRequestIDInErrorBody checks that every error response carries the
// request ID — the breadcrumb that ties a client-side failure report to
// the server's logs.
func TestRequestIDInErrorBody(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, Obs: obs.New()}, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "err-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var eb struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.RequestID != "err-trace-7" {
		t.Fatalf("error body request_id = %q, want err-trace-7 (error: %s)", eb.RequestID, eb.Error)
	}
}
