package cli

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"picpredict/internal/obs"
)

func TestStartRunDisabled(t *testing.T) {
	run, err := StartRun("test", "", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Reg != nil {
		t.Fatal("Reg should be nil when both flags are empty")
	}
	if addr := run.PprofAddr(); addr != "" {
		t.Fatalf("PprofAddr = %q, want empty", addr)
	}
	// The whole session must be a no-op: no manifest side effects.
	run.SetConfig(map[string]any{"k": "v"})
	run.Artefact("nope.bin")
	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStartRunManifest(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(art, []byte("artefact bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "run.json")

	run, err := StartRun("test", manifest, "", []string{"-flag", "v"})
	if err != nil {
		t.Fatal(err)
	}
	if run.Reg == nil {
		t.Fatal("Reg should be live when -metrics is set")
	}
	run.Reg.Counter("c").Add(3)
	run.Reg.StageDone("work")
	run.SetConfig(map[string]any{"ranks": 4})
	run.Artefact(art)
	run.Artefact(filepath.Join(dir, "missing.bin")) // skipped, not fatal
	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}

	m, err := obs.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "test" || m.Counters["c"] != 3 || len(m.Stages) != 1 {
		t.Fatalf("manifest = %+v", m)
	}
	if m.ConfigFingerprint == "" {
		t.Fatal("config fingerprint missing")
	}
	if len(m.Artefacts) != 1 || m.Artefacts[0].Path != art {
		t.Fatalf("artefacts = %+v", m.Artefacts)
	}
}

func TestStartRunPprofServer(t *testing.T) {
	run, err := StartRun("test", "", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := run.PprofAddr()
	if addr == "" {
		t.Fatal("no pprof listener bound")
	}
	run.Reg.Counter("served").Inc()

	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/vars" && !strings.Contains(string(body), "picpredict") {
			t.Fatalf("expvar snapshot missing from %s: %s", path, body)
		}
	}
}
