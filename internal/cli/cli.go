// Package cli holds the flag-validation and artefact-opening boilerplate
// shared by the cmd binaries (picgen, wlgen, predict, experiments), so
// every front end validates flags, reports salvage warnings, and reacts to
// SIGINT/SIGTERM the same way.
package cli

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"picpredict"
	"picpredict/internal/rebalance"
	"picpredict/internal/scenario"
)

// Context returns a context cancelled by SIGINT or SIGTERM (and a stop
// function releasing the signal handler). Pipeline stages check it between
// frames, so an interrupted binary drains cleanly — and a checkpointing
// picgen run writes a final checkpoint before exiting. A second signal
// kills the process immediately (default Go behaviour once stop runs).
func Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Positive validates that an integer flag is positive.
func Positive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive, got %d", name, v)
	}
	return nil
}

// NonNegative validates that a numeric flag is not negative.
func NonNegative(name string, v float64) error {
	if v < 0 {
		return fmt.Errorf("%s must not be negative, got %g", name, v)
	}
	return nil
}

// ParseRanks parses a comma-separated list of positive processor counts.
func ParseRanks(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		r, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("-ranks: %v", err)
		}
		if r <= 0 {
			return nil, fmt.Errorf("-ranks: %d is not positive", r)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-ranks: empty list")
	}
	return out, nil
}

// ParseElements parses an "ex,ey,ez" element-grid flag; every dimension
// must be positive.
func ParseElements(s string) ([3]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("-elements wants ex,ey,ez, got %q", s)
	}
	var dims [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return [3]int{}, fmt.Errorf("-elements component %d: %v", i, err)
		}
		if v <= 0 {
			return [3]int{}, fmt.Errorf("-elements component %d must be positive, got %d", i, v)
		}
		dims[i] = v
	}
	return dims, nil
}

// salvageWarned dedupes salvage warnings per artefact path for the life of
// the process: a binary (or a long-running server) that opens the same
// damaged artefact repeatedly — predict looping over rank counts, a test
// harness, picserve reloading — emits ONE aggregated recovered-frame
// warning per artefact rather than a line per open.
var (
	salvageMu     sync.Mutex
	salvageWarned = make(map[string]bool)
)

// warnSalvage logs the single aggregated salvage warning for path; repeat
// calls for the same path are silent.
func warnSalvage(path, unit string, s *picpredict.Salvage) {
	salvageMu.Lock()
	defer salvageMu.Unlock()
	if salvageWarned[path] {
		return
	}
	salvageWarned[path] = true
	log.Printf("warning: %s is damaged (%v); recovered the %d intact %s and continuing",
		path, s.Damage, s.Recovered, unit)
}

// resetSalvageWarnings clears the dedup table (tests only).
func resetSalvageWarnings() {
	salvageMu.Lock()
	defer salvageMu.Unlock()
	salvageWarned = make(map[string]bool)
}

// OpenTrace opens and parses a trace file, tolerating a damaged tail: one
// aggregated salvage warning is logged per artefact and the intact prefix
// returned — the shared graceful-degradation behaviour of every
// trace-consuming binary.
func OpenTrace(path string) (*picpredict.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, salvage, err := picpredict.ReadTraceSalvaged(f)
	if err != nil {
		return nil, err
	}
	if salvage != nil {
		warnSalvage(path, "frames", salvage)
	}
	return tr, nil
}

// OpenWorkload opens and parses a workload file saved with wlgen -save,
// logging one aggregated salvage warning per artefact and returning the
// intact prefix when the tail is damaged.
func OpenWorkload(path string) (*picpredict.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	wl, salvage, err := picpredict.ReadWorkloadSalvaged(f)
	if err != nil {
		return nil, err
	}
	if salvage != nil {
		warnSalvage(path, "intervals", salvage)
	}
	return wl, nil
}

// ParseAddr validates a listen-address flag of the host:port form (empty
// host binds every interface; port 0 picks a free port).
func ParseAddr(name, s string) error {
	if s == "" {
		return fmt.Errorf("%s must not be empty", name)
	}
	if _, _, err := net.SplitHostPort(s); err != nil {
		return fmt.Errorf("%s wants host:port: %v", name, err)
	}
	return nil
}

// ParseBackends parses a comma-separated backend list (the picgate
// -backends flag): each entry is a dialable host:port, validated through
// ParseAddr plus the stricter dial-side rules (non-empty host, concrete
// non-zero port), and duplicates are rejected rather than silently folded —
// a repeated shard address is almost always a copy-paste error that would
// skew the hash ring.
func ParseBackends(name, s string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if err := ParseAddr(name, part); err != nil {
			return nil, err
		}
		host, port, _ := net.SplitHostPort(part) // ParseAddr already vetted the shape
		if host == "" {
			return nil, fmt.Errorf("%s: %q needs an explicit host (the gate must dial it)", name, part)
		}
		if port == "0" {
			return nil, fmt.Errorf("%s: %q needs a concrete port (port 0 is bind-side only)", name, part)
		}
		if seen[part] {
			return nil, fmt.Errorf("%s: duplicate backend %q", name, part)
		}
		seen[part] = true
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: empty list", name)
	}
	return out, nil
}

// ParseMappings parses a comma-separated mapping-axis list (the predict
// -mappings sweep flag). Each entry must name a known mapping algorithm,
// and duplicates are rejected rather than silently folded — a repeated
// axis value is almost always a typo that would double-price every
// configuration it touches.
func ParseMappings(name, s string) ([]picpredict.MappingKind, error) {
	seen := make(map[picpredict.MappingKind]bool)
	var out []picpredict.MappingKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := picpredict.ParseMappingKind(part)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		if seen[m] {
			return nil, fmt.Errorf("%s: duplicate mapping %q", name, m)
		}
		seen[m] = true
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: empty list", name)
	}
	return out, nil
}

// ParseRebalance validates a single rebalance-policy flag value and returns
// its canonical spelling ("" stays "", "none" stays "none", numeric
// parameters are re-rendered shortest-form) so downstream keys and manifests
// never see two spellings of one policy.
func ParseRebalance(name, s string) (string, error) {
	spec, err := rebalance.ParseSpec(s)
	if err != nil {
		return "", fmt.Errorf("%s: %v", name, err)
	}
	if s == "" {
		return "", nil
	}
	return spec.String(), nil
}

// ParseRebalances parses a comma-separated rebalance-axis list (the predict
// -rebalances sweep flag). Entries are canonicalised through ParseRebalance
// and duplicates of the canonical form rejected — "periodic:04" after
// "periodic:4" is a typo, not a second configuration.
func ParseRebalances(name, s string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec, err := rebalance.ParseSpec(part)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		canon := spec.String()
		if seen[canon] {
			return nil, fmt.Errorf("%s: duplicate rebalance policy %q", name, canon)
		}
		seen[canon] = true
		out = append(out, canon)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: empty list", name)
	}
	return out, nil
}

// ParseModelKinds parses a comma-separated model-kind axis list (the
// predict -model-kinds sweep flag), with the same duplicate rejection as
// ParseMappings.
func ParseModelKinds(name, s string) ([]picpredict.ModelKind, error) {
	seen := make(map[picpredict.ModelKind]bool)
	var out []picpredict.ModelKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := picpredict.ParseModelKind(part)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		if seen[k] {
			return nil, fmt.Errorf("%s: duplicate model kind %q", name, k)
		}
		seen[k] = true
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: empty list", name)
	}
	return out, nil
}

// ParseMachines parses a comma-separated target-machine axis list (the
// predict -machines sweep flag), validating each entry against the known
// machine presets and rejecting duplicates.
func ParseMachines(name, s string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, err := picpredict.MachineByName(part); err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		if seen[part] {
			return nil, fmt.Errorf("%s: duplicate machine %q", name, part)
		}
		seen[part] = true
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: empty list", name)
	}
	return out, nil
}

// PositiveDuration validates that a duration flag is positive.
func PositiveDuration(name string, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("%s must be positive, got %v", name, d)
	}
	return nil
}

// NamedPath is one "[name=]path" artefact reference from a comma-separated
// flag; the default name is the path's base without extension.
type NamedPath struct {
	Name, Path string
}

// ParseNamedPaths parses a comma-separated "[name=]path" artefact list —
// the picserve -trace/-workload flag syntax. Names must be unique within
// one flag.
func ParseNamedPaths(flagName, s string) ([]NamedPath, error) {
	seen := make(map[string]bool)
	var out []NamedPath
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		np := NamedPath{Path: part}
		if name, path, ok := strings.Cut(part, "="); ok {
			np = NamedPath{Name: strings.TrimSpace(name), Path: strings.TrimSpace(path)}
			if np.Name == "" || np.Path == "" {
				return nil, fmt.Errorf("%s: malformed entry %q (want [name=]path)", flagName, part)
			}
		} else {
			base := filepath.Base(np.Path)
			np.Name = strings.TrimSuffix(base, filepath.Ext(base))
		}
		if seen[np.Name] {
			return nil, fmt.Errorf("%s: duplicate artefact name %q", flagName, np.Name)
		}
		seen[np.Name] = true
		out = append(out, np)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: empty list", flagName)
	}
	return out, nil
}

// ScenarioByName returns the named scenario preset as the facade type the
// fused pipeline consumes.
func ScenarioByName(name string) (picpredict.Scenario, error) {
	switch name {
	case "hele-shaw":
		return picpredict.HeleShaw(), nil
	case "hele-shaw-paper":
		return picpredict.HeleShawFull(), nil
	case "uniform":
		return picpredict.UniformScenario(), nil
	case "gaussian":
		return picpredict.GaussianScenario(), nil
	case "shock-tube":
		return picpredict.ShockTubeScenario(), nil
	default:
		return picpredict.Scenario{}, fmt.Errorf("unknown scenario %q (hele-shaw, hele-shaw-paper, uniform, gaussian, shock-tube)", name)
	}
}

// SpecByName returns the named scenario preset as the raw spec the trace
// pipeline stages consume.
func SpecByName(name string) (scenario.Spec, error) {
	switch name {
	case "hele-shaw":
		return scenario.HeleShaw(), nil
	case "hele-shaw-paper":
		return scenario.HeleShawPaper(), nil
	case "uniform":
		return scenario.Uniform(), nil
	case "gaussian":
		return scenario.GaussianCluster(), nil
	case "shock-tube":
		return scenario.ShockTube(), nil
	default:
		return scenario.Spec{}, fmt.Errorf("unknown scenario %q (hele-shaw, hele-shaw-paper, uniform, gaussian, shock-tube)", name)
	}
}
