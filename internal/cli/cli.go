// Package cli holds the flag-validation and artefact-opening boilerplate
// shared by the cmd binaries (picgen, wlgen, predict, experiments), so
// every front end validates flags, reports salvage warnings, and reacts to
// SIGINT/SIGTERM the same way.
package cli

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"picpredict"
	"picpredict/internal/scenario"
)

// Context returns a context cancelled by SIGINT or SIGTERM (and a stop
// function releasing the signal handler). Pipeline stages check it between
// frames, so an interrupted binary drains cleanly — and a checkpointing
// picgen run writes a final checkpoint before exiting. A second signal
// kills the process immediately (default Go behaviour once stop runs).
func Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Positive validates that an integer flag is positive.
func Positive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive, got %d", name, v)
	}
	return nil
}

// NonNegative validates that a numeric flag is not negative.
func NonNegative(name string, v float64) error {
	if v < 0 {
		return fmt.Errorf("%s must not be negative, got %g", name, v)
	}
	return nil
}

// ParseRanks parses a comma-separated list of positive processor counts.
func ParseRanks(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		r, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("-ranks: %v", err)
		}
		if r <= 0 {
			return nil, fmt.Errorf("-ranks: %d is not positive", r)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-ranks: empty list")
	}
	return out, nil
}

// ParseElements parses an "ex,ey,ez" element-grid flag; every dimension
// must be positive.
func ParseElements(s string) ([3]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("-elements wants ex,ey,ez, got %q", s)
	}
	var dims [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return [3]int{}, fmt.Errorf("-elements component %d: %v", i, err)
		}
		if v <= 0 {
			return [3]int{}, fmt.Errorf("-elements component %d must be positive, got %d", i, v)
		}
		dims[i] = v
	}
	return dims, nil
}

// OpenTrace opens and parses a trace file, tolerating a damaged tail: the
// salvage warning is logged and the intact prefix returned — the shared
// graceful-degradation behaviour of every trace-consuming binary.
func OpenTrace(path string) (*picpredict.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, salvage, err := picpredict.ReadTraceSalvaged(f)
	if err != nil {
		return nil, err
	}
	if salvage != nil {
		log.Printf("warning: %s is damaged (%v); recovered the %d intact frames and continuing",
			path, salvage.Damage, salvage.Recovered)
	}
	return tr, nil
}

// OpenWorkload opens and parses a workload file saved with wlgen -save,
// logging a salvage warning and returning the intact prefix when the tail
// is damaged.
func OpenWorkload(path string) (*picpredict.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	wl, salvage, err := picpredict.ReadWorkloadSalvaged(f)
	if err != nil {
		return nil, err
	}
	if salvage != nil {
		log.Printf("warning: %s is damaged (%v); recovered the %d intact intervals and continuing",
			path, salvage.Damage, salvage.Recovered)
	}
	return wl, nil
}

// ScenarioByName returns the named scenario preset as the facade type the
// fused pipeline consumes.
func ScenarioByName(name string) (picpredict.Scenario, error) {
	switch name {
	case "hele-shaw":
		return picpredict.HeleShaw(), nil
	case "hele-shaw-paper":
		return picpredict.HeleShawFull(), nil
	case "uniform":
		return picpredict.UniformScenario(), nil
	case "gaussian":
		return picpredict.GaussianScenario(), nil
	case "shock-tube":
		return picpredict.ShockTubeScenario(), nil
	default:
		return picpredict.Scenario{}, fmt.Errorf("unknown scenario %q (hele-shaw, hele-shaw-paper, uniform, gaussian, shock-tube)", name)
	}
}

// SpecByName returns the named scenario preset as the raw spec the trace
// pipeline stages consume.
func SpecByName(name string) (scenario.Spec, error) {
	switch name {
	case "hele-shaw":
		return scenario.HeleShaw(), nil
	case "hele-shaw-paper":
		return scenario.HeleShawPaper(), nil
	case "uniform":
		return scenario.Uniform(), nil
	case "gaussian":
		return scenario.GaussianCluster(), nil
	case "shock-tube":
		return scenario.ShockTube(), nil
	default:
		return scenario.Spec{}, fmt.Errorf("unknown scenario %q (hele-shaw, hele-shaw-paper, uniform, gaussian, shock-tube)", name)
	}
}
