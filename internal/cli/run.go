package cli

import (
	"errors"
	"expvar"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"picpredict/internal/obs"
)

// Run is one binary invocation's observability session: the registry the
// run's hot paths record into, the optional pprof/expvar HTTP listener, and
// the metadata the final run manifest needs. StartRun builds one from the
// shared -metrics/-pprof flags; Finish writes the manifest.
//
// When both flags are empty Reg stays nil and the whole layer — every
// instrument lookup and every record call — degrades to nil-check no-ops,
// keeping the uninstrumented hot paths at full speed.
type Run struct {
	// Reg is the run's registry; nil when observability is disabled.
	Reg *obs.Registry

	tool        string
	metricsPath string
	args        []string
	config      map[string]any
	artefacts   []string
	start       time.Time
	ln          net.Listener
}

// StartRun begins an observability session for a binary named tool.
// metricsPath is the -metrics flag (empty disables the manifest); pprofAddr
// is the -pprof flag (empty disables the HTTP server). args should be
// os.Args[1:], recorded verbatim in the manifest.
//
// With pprofAddr set, an HTTP server starts immediately serving
// net/http/pprof under /debug/pprof/ and the registry's live snapshot (as
// expvar) under /debug/vars. The server lives until the process exits —
// profiles are most useful while the run is in flight.
func StartRun(tool, metricsPath, pprofAddr string, args []string) (*Run, error) {
	r := &Run{tool: tool, metricsPath: metricsPath, args: args, start: time.Now()}
	if metricsPath == "" && pprofAddr == "" {
		return r, nil
	}
	r.Reg = obs.New()
	if pprofAddr != "" {
		r.Reg.PublishExpvar("picpredict")
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		ln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return nil, fmt.Errorf("-pprof: %w", err)
		}
		r.ln = ln
		log.Printf("pprof: serving profiles on http://%s/debug/pprof/ (expvar at /debug/vars)", ln.Addr())
		go func() {
			if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("pprof: server stopped: %v", err)
			}
		}()
	}
	return r, nil
}

// PprofAddr returns the bound pprof listener address ("" when -pprof is
// off) — useful when the flag asked for port 0.
func (r *Run) PprofAddr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// SetConfig records the effective run configuration (flag values after
// defaulting) for the manifest's config block and fingerprint.
func (r *Run) SetConfig(config map[string]any) {
	if r == nil {
		return
	}
	r.config = config
}

// Artefact registers an output file to be checksummed into the manifest.
// Call after the file is durably in place; missing files are skipped at
// Finish time (a cancelled run may not have produced its outputs).
func (r *Run) Artefact(path string) {
	if r == nil || path == "" {
		return
	}
	r.artefacts = append(r.artefacts, path)
}

// Finish closes the session: when -metrics was given, it snapshots the
// registry and writes the run manifest. Call once, right before exit (on
// success or failure — a partial manifest from a failed run is still
// evidence). Nil-safe and a no-op when observability is off.
func (r *Run) Finish() error {
	if r == nil || r.metricsPath == "" {
		return nil
	}
	m, err := obs.BuildManifest(r.Reg, r.tool, r.args, r.config, r.start, r.artefacts)
	if err != nil {
		return fmt.Errorf("-metrics: %w", err)
	}
	if err := obs.WriteManifest(r.metricsPath, m); err != nil {
		return fmt.Errorf("-metrics: %w", err)
	}
	return nil
}
