package cli

import "testing"

func TestParseRanks(t *testing.T) {
	got, err := ParseRanks("1044, 2088,4176")
	if err != nil || len(got) != 3 || got[0] != 1044 || got[2] != 4176 {
		t.Errorf("ParseRanks = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-5", "abc", "10,x"} {
		if _, err := ParseRanks(bad); err == nil {
			t.Errorf("ParseRanks(%q) accepted", bad)
		}
	}
}

func TestParseElements(t *testing.T) {
	dims, err := ParseElements("128, 64,1")
	if err != nil || dims != [3]int{128, 64, 1} {
		t.Errorf("ParseElements = %v, %v", dims, err)
	}
	for _, bad := range []string{"", "1,2", "1,2,3,4", "a,b,c", "0,1,1", "-2,1,1"} {
		if _, err := ParseElements(bad); err == nil {
			t.Errorf("ParseElements(%q) accepted", bad)
		}
	}
}

func TestPositive(t *testing.T) {
	if err := Positive("-ranks", 8); err != nil {
		t.Errorf("Positive(8) = %v", err)
	}
	for _, bad := range []int{0, -1} {
		if err := Positive("-ranks", bad); err == nil {
			t.Errorf("Positive(%d) accepted", bad)
		}
	}
	if err := NonNegative("-filter", 0); err != nil {
		t.Errorf("NonNegative(0) = %v", err)
	}
	if err := NonNegative("-filter", -0.1); err == nil {
		t.Error("NonNegative(-0.1) accepted")
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"hele-shaw", "hele-shaw-paper", "uniform", "gaussian", "shock-tube"} {
		spec, err := SpecByName(name)
		if err != nil {
			t.Errorf("SpecByName(%q): %v", name, err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("spec %q invalid: %v", name, err)
		}
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Errorf("ScenarioByName(%q): %v", name, err)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", name, err)
		}
		if sc.Name() != spec.Name {
			t.Errorf("%q: spec name %q, scenario name %q", name, spec.Name, sc.Name())
		}
	}
	if _, err := SpecByName("bogus"); err == nil {
		t.Error("unknown spec name accepted")
	}
	if _, err := ScenarioByName("bogus"); err == nil {
		t.Error("unknown scenario name accepted")
	}
}

func TestContext(t *testing.T) {
	ctx, stop := Context()
	defer stop()
	if err := ctx.Err(); err != nil {
		t.Errorf("fresh signal context already cancelled: %v", err)
	}
	stop()
	// stop releases the handler; the context itself only cancels on signal
	// or on stop, per signal.NotifyContext semantics.
	<-ctx.Done()
}
