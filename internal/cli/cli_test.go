package cli

import (
	"bytes"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"picpredict"
)

func TestParseRanks(t *testing.T) {
	got, err := ParseRanks("1044, 2088,4176")
	if err != nil || len(got) != 3 || got[0] != 1044 || got[2] != 4176 {
		t.Errorf("ParseRanks = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-5", "abc", "10,x"} {
		if _, err := ParseRanks(bad); err == nil {
			t.Errorf("ParseRanks(%q) accepted", bad)
		}
	}
}

func TestParseElements(t *testing.T) {
	dims, err := ParseElements("128, 64,1")
	if err != nil || dims != [3]int{128, 64, 1} {
		t.Errorf("ParseElements = %v, %v", dims, err)
	}
	for _, bad := range []string{"", "1,2", "1,2,3,4", "a,b,c", "0,1,1", "-2,1,1"} {
		if _, err := ParseElements(bad); err == nil {
			t.Errorf("ParseElements(%q) accepted", bad)
		}
	}
}

// TestParseRanksErrorPaths pins the rejection behaviour callers rely on:
// which inputs fail, and that the message names the flag and the offending
// value so a log.Fatal of the error is self-explanatory.
func TestParseRanksErrorPaths(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring the error must carry
	}{
		{"", "-ranks: empty list"},
		{" , ,", "-ranks: empty list"},                     // whitespace-only entries are skipped, leaving nothing
		{"0", "0 is not positive"},                         // zero rank count
		{"16,-4", "-4 is not positive"},                    // negative in an otherwise valid list
		{"abc", "invalid syntax"},                          // non-numeric
		{"16,1e3", "invalid syntax"},                       // floats are not rank counts
		{"16,,32", ""},                                     // interior empty entries are tolerated
		{"999999999999999999999999", "value out of range"}, // overflows int
	}
	for _, c := range cases {
		got, err := ParseRanks(c.in)
		if c.in == "16,,32" {
			if err != nil || len(got) != 2 || got[0] != 16 || got[1] != 32 {
				t.Errorf("ParseRanks(%q) = %v, %v; want [16 32]", c.in, got, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseRanks(%q) accepted, got %v", c.in, got)
			continue
		}
		if !strings.Contains(err.Error(), "-ranks") {
			t.Errorf("ParseRanks(%q) error %q does not name the flag", c.in, err)
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseRanks(%q) error %q missing %q", c.in, err, c.want)
		}
	}
}

// TestParseElementsErrorPaths pins the per-component diagnostics of the
// element-grid flag.
func TestParseElementsErrorPaths(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", `wants ex,ey,ez`},
		{"4,4", `wants ex,ey,ez`},
		{"4,4,4,4", `wants ex,ey,ez`},
		{"x,4,4", "component 0"},
		{"4,x,4", "component 1"},
		{"4,4,x", "component 2"},
		{"4,0,4", "component 1 must be positive"},
		{"4,4,-1", "component 2 must be positive"},
		{"4,4,99999999999999999999", "component 2"},
	}
	for _, c := range cases {
		dims, err := ParseElements(c.in)
		if err == nil {
			t.Errorf("ParseElements(%q) accepted, got %v", c.in, dims)
			continue
		}
		if dims != [3]int{} {
			t.Errorf("ParseElements(%q) returned %v alongside an error; want the zero value", c.in, dims)
		}
		if !strings.Contains(err.Error(), "-elements") {
			t.Errorf("ParseElements(%q) error %q does not name the flag", c.in, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseElements(%q) error %q missing %q", c.in, err, c.want)
		}
	}

	// Interior whitespace is tolerated around components, not inside them.
	if dims, err := ParseElements(" 8 , 4 , 2 "); err != nil || dims != [3]int{8, 4, 2} {
		t.Errorf("ParseElements with padding = %v, %v", dims, err)
	}
}

func TestPositive(t *testing.T) {
	if err := Positive("-ranks", 8); err != nil {
		t.Errorf("Positive(8) = %v", err)
	}
	for _, bad := range []int{0, -1} {
		if err := Positive("-ranks", bad); err == nil {
			t.Errorf("Positive(%d) accepted", bad)
		}
	}
	if err := NonNegative("-filter", 0); err != nil {
		t.Errorf("NonNegative(0) = %v", err)
	}
	if err := NonNegative("-filter", -0.1); err == nil {
		t.Error("NonNegative(-0.1) accepted")
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"hele-shaw", "hele-shaw-paper", "uniform", "gaussian", "shock-tube"} {
		spec, err := SpecByName(name)
		if err != nil {
			t.Errorf("SpecByName(%q): %v", name, err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("spec %q invalid: %v", name, err)
		}
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Errorf("ScenarioByName(%q): %v", name, err)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", name, err)
		}
		if sc.Name() != spec.Name {
			t.Errorf("%q: spec name %q, scenario name %q", name, spec.Name, sc.Name())
		}
	}
	if _, err := SpecByName("bogus"); err == nil {
		t.Error("unknown spec name accepted")
	}
	if _, err := ScenarioByName("bogus"); err == nil {
		t.Error("unknown scenario name accepted")
	}
}

func TestContext(t *testing.T) {
	ctx, stop := Context()
	defer stop()
	if err := ctx.Err(); err != nil {
		t.Errorf("fresh signal context already cancelled: %v", err)
	}
	stop()
	// stop releases the handler; the context itself only cancels on signal
	// or on stop, per signal.NotifyContext semantics.
	<-ctx.Done()
}

// writeTornTrace writes a small trace artefact and tears its final frame,
// so salvaged opens report damage.
func writeTornTrace(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	sc := picpredict.HeleShaw().WithParticles(40).WithSteps(20).WithSampleEvery(5)
	if err := sc.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "torn.bin")
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()-10], 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSalvageWarningDeduped: opening the same damaged artefact repeatedly —
// predict looping over rank counts, picserve startup — logs ONE aggregated
// warning, not a line per open.
func TestSalvageWarningDeduped(t *testing.T) {
	path := writeTornTrace(t)
	resetSalvageWarnings()

	var logs bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logs)
	defer log.SetOutput(prev)

	for i := 0; i < 3; i++ {
		tr, err := OpenTrace(path)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		if tr.Frames() == 0 {
			t.Fatalf("open %d salvaged nothing", i)
		}
	}
	warnings := strings.Count(logs.String(), "warning:")
	if warnings != 1 {
		t.Fatalf("3 opens of one damaged artefact logged %d warnings, want 1:\n%s", warnings, logs.String())
	}
	if !strings.Contains(logs.String(), "recovered the") || !strings.Contains(logs.String(), "intact frames") {
		t.Errorf("warning does not aggregate the recovered-frame count:\n%s", logs.String())
	}

	// A different artefact (same damage) still gets its own warning.
	other := writeTornTrace(t)
	if _, err := OpenTrace(other); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(logs.String(), "warning:"); got != 2 {
		t.Fatalf("distinct damaged artefact did not get its own warning (total %d)", got)
	}
}

func TestParseAddr(t *testing.T) {
	for _, ok := range []string{"127.0.0.1:8080", ":0", "localhost:6060", "[::1]:80"} {
		if err := ParseAddr("-listen", ok); err != nil {
			t.Errorf("ParseAddr(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", "8080", "localhost", "host:port:extra"} {
		if err := ParseAddr("-listen", bad); err == nil {
			t.Errorf("ParseAddr(%q) accepted", bad)
		}
	}
}

func TestPositiveDuration(t *testing.T) {
	if err := PositiveDuration("-request-timeout", time.Second); err != nil {
		t.Errorf("PositiveDuration(1s) = %v", err)
	}
	for _, bad := range []time.Duration{0, -time.Millisecond} {
		if err := PositiveDuration("-request-timeout", bad); err == nil {
			t.Errorf("PositiveDuration(%v) accepted", bad)
		}
	}
}

func TestParseNamedPaths(t *testing.T) {
	got, err := ParseNamedPaths("-trace", "hs=/tmp/a.bin, /data/hele-shaw.bin ,b=/x")
	if err != nil {
		t.Fatal(err)
	}
	want := []NamedPath{
		{Name: "hs", Path: "/tmp/a.bin"},
		{Name: "hele-shaw", Path: "/data/hele-shaw.bin"}, // default name: base sans extension
		{Name: "b", Path: "/x"},
	}
	if len(got) != len(want) {
		t.Fatalf("ParseNamedPaths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", " , ", "=path", "name=", "a=/x,a=/y", "/dir/t.bin,t=/other"} {
		if _, err := ParseNamedPaths("-trace", bad); err == nil {
			t.Errorf("ParseNamedPaths(%q) accepted", bad)
		}
	}
}

// TestParseBackends pins the -backends contract and the exact guidance in
// each rejection: operators paste these lists under incident pressure, and
// the error message is the documentation they get.
func TestParseBackends(t *testing.T) {
	got, err := ParseBackends("-backends", " 127.0.0.1:8081 ,127.0.0.1:8082,, [::1]:9000 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"127.0.0.1:8081", "127.0.0.1:8082", "[::1]:9000"}
	if len(got) != len(want) {
		t.Fatalf("ParseBackends = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %q, want %q", i, got[i], want[i])
		}
	}

	cases := []struct {
		name string
		in   string
		want string // substring of the error message
	}{
		{"empty string", "", "empty list"},
		{"only separators", " , ,", "empty list"},
		{"missing port", "127.0.0.1:8081,localhost", "-backends"},
		{"bind-all host", ":8080", "needs an explicit host"},
		{"port zero", "127.0.0.1:0", "port 0 is bind-side only"},
		{"duplicate", "a:1,b:2,a:1", `duplicate backend "a:1"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseBackends("-backends", c.in)
			if err == nil {
				t.Fatalf("ParseBackends(%q) accepted", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q missing %q", err, c.want)
			}
		})
	}
}

// TestParseMappings pins the valid-path shape and error diagnostics of the
// predict -mappings sweep axis, mirroring TestParseRanksErrorPaths.
func TestParseMappings(t *testing.T) {
	got, err := ParseMappings("-mappings", " bin, hilbert ,")
	if err != nil || len(got) != 2 || got[0] != picpredict.MappingBin || got[1] != picpredict.MappingHilbert {
		t.Fatalf("ParseMappings = %v, %v; want [bin hilbert]", got, err)
	}

	cases := []struct {
		name string
		in   string
		want string // substring of the error message
	}{
		{"empty string", "", "empty list"},
		{"only separators", " , ,", "empty list"},
		{"unknown", "zigzag", `unknown mapping "zigzag"`},
		{"unknown in list", "bin,zigzag", `unknown mapping "zigzag"`},
		{"duplicate", "bin,hilbert,bin", `duplicate mapping "bin"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseMappings("-mappings", c.in)
			if err == nil {
				t.Fatalf("ParseMappings(%q) accepted", c.in)
			}
			if !strings.Contains(err.Error(), "-mappings") {
				t.Errorf("error %q does not name the flag", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q missing %q", err, c.want)
			}
		})
	}
}

// TestParseModelKinds pins the -model-kinds sweep axis diagnostics.
func TestParseModelKinds(t *testing.T) {
	got, err := ParseModelKinds("-model-kinds", "synthetic, wallclock")
	if err != nil || len(got) != 2 || got[0] != picpredict.ModelSynthetic || got[1] != picpredict.ModelWallClock {
		t.Fatalf("ParseModelKinds = %v, %v; want [synthetic wallclock]", got, err)
	}

	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty string", "", "empty list"},
		{"only separators", " , ,", "empty list"},
		{"unknown", "psychic", `unknown model kind "psychic"`},
		{"unknown in list", "synthetic,psychic", `unknown model kind "psychic"`},
		{"duplicate", "app,app", `duplicate model kind "app"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseModelKinds("-model-kinds", c.in)
			if err == nil {
				t.Fatalf("ParseModelKinds(%q) accepted", c.in)
			}
			if !strings.Contains(err.Error(), "-model-kinds") {
				t.Errorf("error %q does not name the flag", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q missing %q", err, c.want)
			}
		})
	}
}

// TestParseMachines pins the -machines sweep axis diagnostics.
func TestParseMachines(t *testing.T) {
	got, err := ParseMachines("-machines", " quartz ,vulcan,, titan ")
	if err != nil || len(got) != 3 || got[0] != "quartz" || got[1] != "vulcan" || got[2] != "titan" {
		t.Fatalf("ParseMachines = %v, %v; want [quartz vulcan titan]", got, err)
	}

	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty string", "", "empty list"},
		{"only separators", " , ,", "empty list"},
		{"unknown", "cray", `unknown machine "cray"`},
		{"unknown in list", "quartz,cray", `unknown machine "cray"`},
		{"duplicate", "quartz,quartz", `duplicate machine "quartz"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseMachines("-machines", c.in)
			if err == nil {
				t.Fatalf("ParseMachines(%q) accepted", c.in)
			}
			if !strings.Contains(err.Error(), "-machines") {
				t.Errorf("error %q does not name the flag", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q missing %q", err, c.want)
			}
		})
	}
}

// TestParseRebalance pins the point-mode -rebalance flag: canonicalisation,
// the ""/"none" identities, and flag-named diagnostics.
func TestParseRebalance(t *testing.T) {
	for in, want := range map[string]string{
		"":               "",
		"none":           "none",
		"periodic:04":    "periodic:4",
		"threshold:1.50": "threshold:1.5",
		"diffusion:1.2":  "diffusion:1.2/3",
	} {
		got, err := ParseRebalance("-rebalance", in)
		if err != nil || got != want {
			t.Errorf("ParseRebalance(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, in := range []string{"periodic:0", "bogus:1", "threshold:NaN", "none:1"} {
		_, err := ParseRebalance("-rebalance", in)
		if err == nil {
			t.Errorf("ParseRebalance(%q) accepted", in)
		} else if !strings.Contains(err.Error(), "-rebalance") {
			t.Errorf("error %q does not name the flag", err)
		}
	}
}

// TestParseRebalances pins the -rebalances sweep axis: canonical dedup and
// the same list diagnostics as the other axis parsers.
func TestParseRebalances(t *testing.T) {
	got, err := ParseRebalances("-rebalances", " none, periodic:4 , diffusion:1.2/5,")
	want := []string{"none", "periodic:4", "diffusion:1.2/5"}
	if err != nil || len(got) != len(want) {
		t.Fatalf("ParseRebalances = %v, %v; want %v", got, err, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseRebalances = %v, want %v", got, want)
		}
	}

	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty string", "", "empty list"},
		{"only separators", " , ,", "empty list"},
		{"bad spec", "periodic:-1", "rebalance"},
		{"duplicate canonical", "periodic:4,periodic:04", `duplicate rebalance policy "periodic:4"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseRebalances("-rebalances", c.in)
			if err == nil {
				t.Fatalf("ParseRebalances(%q) accepted", c.in)
			}
			if !strings.Contains(err.Error(), "-rebalances") {
				t.Errorf("error %q does not name the flag", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q missing %q", err, c.want)
			}
		})
	}
}
