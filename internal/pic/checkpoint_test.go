package pic

import (
	"bytes"
	"math/rand"
	"testing"

	"picpredict/internal/faultfs"
	"picpredict/internal/fluid"
	"picpredict/internal/geom"
	"picpredict/internal/mesh"
	"picpredict/internal/particle"
)

// manySolver builds a solver with a deterministic multi-particle population.
func manySolver(t *testing.T, flow fluid.Flow) *Solver {
	t.Helper()
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(4, 4, 4)), 4, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	ps := particle.New(40)
	for i := 0; i < 40; i++ {
		pos := geom.V(0.5+3*rng.Float64(), 0.5+3*rng.Float64(), 0.5+3*rng.Float64())
		vel := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.01)
		ps.Add(int64(i), pos, vel, 1e-4, 1000)
	}
	s, err := NewSolver(m, flow, ps, baseParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func eulerFlow(t *testing.T) *fluid.EulerSolver {
	t.Helper()
	grid, err := geom.NewGrid(geom.Box(geom.V(0, 0, 0), geom.V(4, 4, 4)), 16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	es, err := fluid.NewEulerSolver(grid, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	es.MUSCL = true
	es.InitRiemann(0, 1.0, fluid.Prim{Rho: 1, P: 1}, fluid.Prim{Rho: 0.125, P: 0.1})
	return es
}

// checkSameTrajectory steps both solvers further and requires bit-identical
// particle states throughout.
func checkSameTrajectory(t *testing.T, a, b *Solver, steps int) {
	t.Helper()
	for s := 0; s < steps; s++ {
		a.Step()
		b.Step()
		if a.StepCount() != b.StepCount() || a.Time() != b.Time() {
			t.Fatalf("step/time diverged: %d/%g vs %d/%g", a.StepCount(), a.Time(), b.StepCount(), b.Time())
		}
		for i := range a.Particles.Pos {
			if a.Particles.Pos[i] != b.Particles.Pos[i] || a.Particles.Vel[i] != b.Particles.Vel[i] {
				t.Fatalf("step %d particle %d diverged: %v vs %v", s, i, a.Particles.Pos[i], b.Particles.Pos[i])
			}
		}
	}
}

func TestCheckpointRoundTripAnalyticFlow(t *testing.T) {
	flow := &fluid.DiaphragmBurst{Origin: geom.V(2, 2, 2), Amp: 0.01, Decay: 1, Core: 0.5}
	ref := manySolver(t, flow)
	for i := 0; i < 7; i++ {
		ref.Step()
	}
	var buf bytes.Buffer
	if err := ref.EncodeCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored := manySolver(t, &fluid.DiaphragmBurst{Origin: geom.V(2, 2, 2), Amp: 0.01, Decay: 1, Core: 0.5})
	if err := restored.DecodeCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.StepCount() != 7 || restored.Time() != ref.Time() {
		t.Fatalf("restored to step %d, time %g", restored.StepCount(), restored.Time())
	}
	checkSameTrajectory(t, ref, restored, 10)
}

func TestCheckpointRoundTripEulerFlow(t *testing.T) {
	ref := manySolver(t, eulerFlow(t))
	for i := 0; i < 5; i++ {
		ref.Step()
	}
	var buf bytes.Buffer
	if err := ref.EncodeCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a freshly initialised solver: the Euler gas state must
	// come back from the snapshot, not from re-running the fluid.
	restored := manySolver(t, eulerFlow(t))
	if err := restored.DecodeCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	checkSameTrajectory(t, ref, restored, 10)
}

func TestCheckpointRejectsMismatchedSolver(t *testing.T) {
	flow := fluid.Uniform{}
	ref := manySolver(t, flow)
	var buf bytes.Buffer
	if err := ref.EncodeCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// A solver with a different particle count must refuse the snapshot.
	other := solverFixture(t, flow, baseParams())
	if err := other.DecodeCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore into mismatched particle count accepted")
	}
	// A solver whose flow is stateful when the checkpoint's was not (and
	// vice versa) must also refuse.
	statefulSolver := manySolver(t, eulerFlow(t))
	if err := statefulSolver.DecodeCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("stateless checkpoint restored into stateful solver")
	}
	var eulerBuf bytes.Buffer
	if err := statefulSolver.EncodeCheckpoint(&eulerBuf); err != nil {
		t.Fatal(err)
	}
	statelessSolver := manySolver(t, flow)
	if err := statelessSolver.DecodeCheckpoint(bytes.NewReader(eulerBuf.Bytes())); err == nil {
		t.Error("stateful checkpoint restored into stateless solver")
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	ref := manySolver(t, fluid.Uniform{})
	ref.Step()
	var clean bytes.Buffer
	if err := ref.EncodeCheckpoint(&clean); err != nil {
		t.Fatal(err)
	}
	// A flipped bit anywhere in the particle payload fails the restore.
	flipped, err := readAllFlipped(clean.Bytes(), int64(clean.Len()/2), 0x20)
	if err != nil {
		t.Fatal(err)
	}
	fresh := manySolver(t, fluid.Uniform{})
	if err := fresh.DecodeCheckpoint(bytes.NewReader(flipped)); err == nil {
		t.Error("corrupt checkpoint restored without error")
	}
	// A torn checkpoint (crash mid-write) also fails.
	fresh2 := manySolver(t, fluid.Uniform{})
	if err := fresh2.DecodeCheckpoint(bytes.NewReader(clean.Bytes()[:clean.Len()/2])); err == nil {
		t.Error("torn checkpoint restored without error")
	}
}

// readAllFlipped copies data with one byte flipped at off.
func readAllFlipped(data []byte, off int64, mask byte) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := faultfs.FlipWriter(&buf, off, mask).Write(data); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
