package pic

import (
	"fmt"
	"math"
	"sync"

	"picpredict/internal/fluid"
	"picpredict/internal/geom"
	"picpredict/internal/mesh"
	"picpredict/internal/particle"
	"picpredict/internal/tile"
)

// Solver advances a particle population through the PIC solver loop against
// a fluid flow on a spectral-element mesh. It is the executable application
// whose particle traces feed the prediction framework.
type Solver struct {
	Mesh      *mesh.Mesh
	Flow      fluid.Flow
	Particles *particle.Set
	Params    Params

	interp       *Interpolator
	collide      *collider
	proj         []float64   // projected particle volume per element
	projPartials [][]float64 // per-worker partial fields (parallel mode)
	time         float64
	step         int
	fluidAcc     []geom.Vec3 // scratch: per-particle fluid acceleration
	fluidVel     []geom.Vec3 // scratch: per-particle fluid velocity (instrumented mode)

	// Element tiling of the particle population, rebuilt per step: particles
	// resident in the same element are processed as a block so the element's
	// nodal field is fetched once per tile rather than once per particle.
	tb           tile.Builder
	tiling       *tile.Tiling
	cells        []int32 // scratch: home element per particle
	scalarPhases bool    // force the per-particle reference loops (tests, benches)
}

// NewSolver assembles a solver; it validates parameters and rejects
// particles outside the mesh domain.
func NewSolver(m *mesh.Mesh, flow fluid.Flow, ps *particle.Set, params Params) (*Solver, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	dom := m.Domain()
	for i := 0; i < ps.Len(); i++ {
		if !dom.ContainsClosed(ps.Pos[i]) {
			return nil, fmt.Errorf("pic: particle %d at %v outside domain %v", i, ps.Pos[i], dom)
		}
	}
	return &Solver{
		Mesh:      m,
		Flow:      flow,
		Particles: ps,
		Params:    params,
		interp:    NewInterpolator(m, flow),
		collide:   newCollider(),
		proj:      make([]float64, m.NumElements()),
	}, nil
}

// Time returns the current simulation time.
func (s *Solver) Time() float64 { return s.time }

// StepCount returns the number of completed iterations.
func (s *Solver) StepCount() int { return s.step }

// Projection returns the per-element projected particle volume field
// produced by the most recent step. The slice is owned by the solver.
func (s *Solver) Projection() []float64 { return s.proj }

// Step runs one iteration of the PIC solver loop.
func (s *Solver) Step() {
	p := s.Params
	// Advance the gas phase to the end of this step and refresh the
	// interpolation cache (fluid-solver phase).
	s.Flow.Advance(s.time + p.Dt)
	s.interp.BeginStep()

	n := s.Particles.Len()
	if cap(s.fluidAcc) < n {
		s.fluidAcc = make([]geom.Vec3, n)
	}
	acc := s.fluidAcc[:n]

	// Phase 2 inputs — collision forces (optional).
	var coll []geom.Vec3
	if p.Collisions {
		coll = s.collide.Forces(s.Particles, p.CollisionStiffness)
	}

	// Phases 1–3: interpolate, solve momentum equation, push. The default
	// path walks the population element-tile by element-tile so each
	// occupied element's nodal field is fetched once per tile; per-particle
	// arithmetic is unchanged, so the result is bit-identical to the
	// per-particle reference loop (kept for degenerate inputs and benches).
	if s.buildTiling() {
		s.parallelTiles(n, func(t0, t1 int) { s.phaseTiles(t0, t1, acc, coll) })
	} else {
		s.parallelRange(n, func(lo, hi int) { s.phaseRange(lo, hi, acc, coll) })
	}

	// Phase 4: projection (particle → grid).
	s.project()

	s.time += p.Dt
	s.step++
}

// phaseRange is the per-particle reference body of phases 1–3 over the index
// range [lo, hi).
func (s *Solver) phaseRange(lo, hi int, acc, coll []geom.Vec3) {
	p := s.Params
	for i := lo; i < hi; i++ {
		uf := s.interp.Velocity(s.Particles.Pos[i]) // Phase 1: interpolation
		a := s.drag(i, uf).Add(p.Gravity)           // Phase 2: equation solver
		if coll != nil {
			a = a.Add(coll[i])
		}
		acc[i] = a
	}
	switch p.Pusher { // Phase 3: particle pusher
	case PushRK2:
		s.pushRK2(acc, lo, hi)
	default:
		s.pushEuler(acc, lo, hi)
	}
}

// phaseTiles runs phases 1–3 over element tiles [t0, t1). Tile ids equal
// element ids, so the tile's nodal field is fetched exactly once and handed
// to the lock-free interpolation helper for every resident particle.
func (s *Solver) phaseTiles(t0, t1 int, acc, coll []geom.Vec3) {
	p := s.Params
	d := s.Mesh.Domain()
	for t := t0; t < t1; t++ {
		ids := s.tiling.Tile(t)
		if len(ids) == 0 {
			continue
		}
		f := s.interp.nodal(t)
		for _, id := range ids {
			i := int(id)
			q := s.Particles.Pos[i].Clamp(d.Lo, d.Hi)
			uf := s.interp.velocityNodal(t, f, q) // Phase 1: interpolation
			a := s.drag(i, uf).Add(p.Gravity)     // Phase 2: equation solver
			if coll != nil {
				a = a.Add(coll[i])
			}
			acc[i] = a
		}
		switch p.Pusher { // Phase 3: particle pusher
		case PushRK2:
			s.pushRK2Tile(acc, ids)
		default:
			s.pushEulerTile(acc, ids)
		}
	}
}

// buildTiling groups the population by home element for this step's
// grid-interaction phases, using the same clamped lookup as the
// interpolator. It reports false when tiling is forced off or a position has
// no element (non-finite coordinates); callers then use the per-particle
// reference loop, which reproduces those degenerate cases exactly.
func (s *Solver) buildTiling() bool {
	if s.scalarPhases {
		return false
	}
	n := s.Particles.Len()
	if cap(s.cells) < n {
		s.cells = make([]int32, n)
	}
	cells := s.cells[:n]
	d := s.Mesh.Domain()
	for i := 0; i < n; i++ {
		e := s.Mesh.ElementAt(s.Particles.Pos[i].Clamp(d.Lo, d.Hi))
		if e < 0 {
			return false
		}
		cells[i] = int32(e)
	}
	s.cells = cells
	s.tiling = s.tb.FromCells(cells, s.Mesh.NumElements())
	return true
}

// parallelTiles splits the tile list across Params.Workers goroutines along
// the tiling's balanced particle-count cuts (serial under the same
// population threshold as parallelRange).
func (s *Solver) parallelTiles(n int, fn func(t0, t1 int)) {
	workers := s.Params.Workers
	if workers <= 1 || n < 2*workers {
		fn(0, s.tiling.NumTiles())
		return
	}
	var wg sync.WaitGroup
	for _, r := range s.tiling.Ranges(workers) {
		t0, t1 := r[0], r[1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(t0, t1)
		}()
	}
	wg.Wait()
}

// parallelRange splits [0, n) across Params.Workers goroutines (serial when
// Workers ≤ 1) and waits for completion.
func (s *Solver) parallelRange(n int, fn func(lo, hi int)) {
	workers := s.Params.Workers
	if workers <= 1 || n < 2*workers {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// drag returns the Stokes drag acceleration of particle i under fluid
// velocity uf: (uf − v) / τ_p with τ_p = ρ_p d² / (18 μ).
func (s *Solver) drag(i int, uf geom.Vec3) geom.Vec3 {
	ps := s.Particles
	tau := ps.Density[i] * ps.Diameter[i] * ps.Diameter[i] / (18 * s.Params.Mu)
	if tau <= 0 {
		return geom.Vec3{}
	}
	return uf.Sub(ps.Vel[i]).Scale(1 / tau)
}

func (s *Solver) pushEuler(acc []geom.Vec3, lo, hi int) {
	dt := s.Params.Dt
	ps := s.Particles
	for i := lo; i < hi; i++ {
		ps.Vel[i] = ps.Vel[i].Add(acc[i].Scale(dt))
		ps.Pos[i] = ps.Pos[i].Add(ps.Vel[i].Scale(dt))
		s.bounce(i)
	}
}

func (s *Solver) pushRK2(acc []geom.Vec3, lo, hi int) {
	dt := s.Params.Dt
	ps := s.Particles
	for i := lo; i < hi; i++ {
		// Midpoint state.
		vMid := ps.Vel[i].Add(acc[i].Scale(dt / 2))
		pMid := ps.Pos[i].Add(ps.Vel[i].Scale(dt / 2))
		ufMid := s.interp.Velocity(pMid)
		aMid := s.dragAt(i, vMid, ufMid).Add(s.Params.Gravity)
		ps.Vel[i] = ps.Vel[i].Add(aMid.Scale(dt))
		ps.Pos[i] = ps.Pos[i].Add(vMid.Scale(dt))
		s.bounce(i)
	}
}

// pushEulerTile and pushRK2Tile are the tile-id-list forms of the pushers:
// identical per-particle updates, iterated over a tile's member ids
// (ascending, so within a tile the visit order matches the range form).
func (s *Solver) pushEulerTile(acc []geom.Vec3, ids []int32) {
	dt := s.Params.Dt
	ps := s.Particles
	for _, id := range ids {
		i := int(id)
		ps.Vel[i] = ps.Vel[i].Add(acc[i].Scale(dt))
		ps.Pos[i] = ps.Pos[i].Add(ps.Vel[i].Scale(dt))
		s.bounce(i)
	}
}

func (s *Solver) pushRK2Tile(acc []geom.Vec3, ids []int32) {
	dt := s.Params.Dt
	ps := s.Particles
	for _, id := range ids {
		i := int(id)
		vMid := ps.Vel[i].Add(acc[i].Scale(dt / 2))
		pMid := ps.Pos[i].Add(ps.Vel[i].Scale(dt / 2))
		// Midpoints can leave the element, so this one goes through the
		// cached lookup rather than the tile's nodal field.
		ufMid := s.interp.Velocity(pMid)
		aMid := s.dragAt(i, vMid, ufMid).Add(s.Params.Gravity)
		ps.Vel[i] = ps.Vel[i].Add(aMid.Scale(dt))
		ps.Pos[i] = ps.Pos[i].Add(vMid.Scale(dt))
		s.bounce(i)
	}
}

func (s *Solver) dragAt(i int, v, uf geom.Vec3) geom.Vec3 {
	ps := s.Particles
	tau := ps.Density[i] * ps.Diameter[i] * ps.Diameter[i] / (18 * s.Params.Mu)
	if tau <= 0 {
		return geom.Vec3{}
	}
	return uf.Sub(v).Scale(1 / tau)
}

// bounce reflects particle i off the domain walls with the configured
// restitution, keeping every particle inside the closed domain.
func (s *Solver) bounce(i int) {
	d := s.Mesh.Domain()
	ps := s.Particles
	pos, vel := ps.Pos[i], ps.Vel[i]
	// Fast path: the overwhelming majority of pushes stay inside.
	if pos.X >= d.Lo.X && pos.X <= d.Hi.X &&
		pos.Y >= d.Lo.Y && pos.Y <= d.Hi.Y &&
		pos.Z >= d.Lo.Z && pos.Z <= d.Hi.Z {
		return
	}
	for a := 0; a < 3; a++ {
		lo, hi := d.Lo.Axis(a), d.Hi.Axis(a)
		x, v := pos.Axis(a), vel.Axis(a)
		switch {
		case x < lo:
			x = lo + (lo - x)
			v = -v * s.Params.WallRestitution
		case x > hi:
			x = hi - (x - hi)
			v = -v * s.Params.WallRestitution
		}
		// A huge step can overshoot the reflection too; clamp hard.
		x = math.Max(lo, math.Min(hi, x))
		pos = pos.WithAxis(a, x)
		vel = vel.WithAxis(a, v)
	}
	ps.Pos[i], ps.Vel[i] = pos, vel
}

// project deposits each particle's volume onto the elements inside its
// projection filter with a linear hat weight w(r) = 1 − r/R, normalised per
// particle so total deposited volume equals particle volume. In parallel
// mode each worker accumulates into a private partial field; partials
// reduce in fixed worker order, so results are deterministic for a given
// worker count (and equal to serial up to floating-point addition order).
func (s *Solver) project() {
	for e := range s.proj {
		s.proj[e] = 0
	}
	n := s.Particles.Len()
	workers := s.Params.Workers
	if workers <= 1 || n < 2*workers {
		s.projectRange(0, n, s.proj)
		return
	}
	if len(s.projPartials) != workers {
		s.projPartials = make([][]float64, workers)
		for w := range s.projPartials {
			s.projPartials[w] = make([]float64, s.Mesh.NumElements())
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		part := s.projPartials[w]
		for e := range part {
			part[e] = 0
		}
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.projectRange(lo, hi, part)
		}()
	}
	wg.Wait()
	for _, part := range s.projPartials {
		for e, v := range part {
			s.proj[e] += v
		}
	}
}

// projectRange deposits particles [lo, hi) into proj.
func (s *Solver) projectRange(lo, hi int, proj []float64) {
	radius := s.Params.FilterRadius
	ps := s.Particles
	var buf []int
	var w []float64
	for i := lo; i < hi; i++ {
		vol := ps.Mass(i) / ps.Density[i]
		if radius <= 0 {
			if e := s.Mesh.ElementAt(ps.Pos[i]); e >= 0 {
				proj[e] += vol
			}
			continue
		}
		buf = s.Mesh.ElementsInSphere(buf[:0], ps.Pos[i], radius)
		w = w[:0]
		total := 0.0
		for _, e := range buf {
			r := s.Mesh.Elements.CellCenter(e).Dist(ps.Pos[i])
			wt := 1 - r/radius
			if wt < 0 {
				wt = 0
			}
			w = append(w, wt)
			total += wt
		}
		if total <= 0 {
			// Ball intersects elements but all centres are beyond R:
			// deposit everything in the home element.
			if e := s.Mesh.ElementAt(ps.Pos[i]); e >= 0 {
				proj[e] += vol
			}
			continue
		}
		for k, e := range buf {
			proj[e] += vol * w[k] / total
		}
	}
}

// CreateGhostParticles runs the create_ghost_particles kernel against a
// processor decomposition: for every particle it finds the ranks (other
// than the particle's home rank) whose elements its projection filter
// touches. It returns the per-rank ghost counts and the total number of
// ghost particles created.
func (s *Solver) CreateGhostParticles(d *mesh.Decomposition) (perRank []int, total int) {
	gf := NewGhostFinder(s.Mesh, d)
	perRank = make([]int, d.Ranks)
	ps := s.Particles
	n := ps.Len()
	if !s.scalarPhases && s.ghostTiling() {
		// Batched path: group particles by home element and answer the
		// ghost query one tile at a time through the matrixised
		// SphereOwners.RanksTile, whose per-particle rank sets equal the
		// scalar query's exactly. Only counts are accumulated, so the
		// unspecified within-set order does not matter.
		homes := make([]int, n)
		for i := 0; i < n; i++ {
			homes[i] = d.RankOf(int(s.cells[i]))
		}
		var flat []int
		var offs []int32
		for t := 0; t < s.tiling.NumTiles(); t++ {
			ids := s.tiling.Tile(t)
			if len(ids) == 0 {
				continue
			}
			flat, offs = gf.q.RanksTile(flat[:0], offs[:0], ids, ps.Pos, homes, s.Params.FilterRadius)
			for _, r := range flat {
				perRank[r]++
			}
			total += len(flat)
		}
		return perRank, total
	}
	var buf []int
	for i := 0; i < n; i++ {
		home := -1
		if e := s.Mesh.ElementAt(ps.Pos[i]); e >= 0 {
			home = d.RankOf(e)
		}
		buf = gf.Ranks(buf[:0], ps.Pos[i], s.Params.FilterRadius, home)
		for _, r := range buf {
			perRank[r]++
			total++
		}
	}
	return perRank, total
}

// ghostTiling groups the population by home element using the same
// raw-position lookup as the scalar ghost kernel. It reports false when any
// particle lies outside every element (scalar handles those with home = −1)
// so the batched path only ever sees well-homed particles.
func (s *Solver) ghostTiling() bool {
	n := s.Particles.Len()
	if cap(s.cells) < n {
		s.cells = make([]int32, n)
	}
	cells := s.cells[:n]
	for i := 0; i < n; i++ {
		e := s.Mesh.ElementAt(s.Particles.Pos[i])
		if e < 0 {
			return false
		}
		cells[i] = int32(e)
	}
	s.cells = cells
	s.tiling = s.tb.FromCells(cells, s.Mesh.NumElements())
	return true
}

// Run advances the solver `steps` iterations, invoking observe (if non-nil)
// after every iteration with the completed step index.
func (s *Solver) Run(steps int, observe func(step int)) {
	for i := 0; i < steps; i++ {
		s.Step()
		if observe != nil {
			observe(s.step)
		}
	}
}
