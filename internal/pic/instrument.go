package pic

import (
	"time"

	"picpredict/internal/geom"
	"picpredict/internal/mesh"
)

// StepTimings are wall-clock measurements of one instrumented solver
// iteration, one entry per kernel of the PIC solver loop (§III-A). They are
// the training data of the Model Generator when benchmarking the real
// application rather than the synthetic kernel bodies.
type StepTimings struct {
	// FluidAdvance is the gas-phase (fluid-solver) time.
	FluidAdvance time.Duration
	// Collisions is the particle–particle collision force time (zero when
	// collisions are disabled).
	Collisions time.Duration
	// Interpolation is the grid→particle phase.
	Interpolation time.Duration
	// EqSolver is the momentum-equation phase.
	EqSolver time.Duration
	// Pusher is the position-update phase.
	Pusher time.Duration
	// Projection is the particle→grid phase.
	Projection time.Duration
}

// StepInstrumented runs one solver iteration with the per-particle phases
// executed as separate passes so each kernel can be timed individually. The
// resulting particle state is identical to Step's: the fused loop evaluates
// exactly the same expressions per particle, only loop structure differs.
// Instrumented stepping always runs serially (timings of interleaved
// goroutines would not be attributable to kernels).
func (s *Solver) StepInstrumented() StepTimings {
	p := s.Params
	var t StepTimings

	start := time.Now() //lint:allow determinism wall-clock kernel timing is this file's product (Model Generator training data)
	s.Flow.Advance(s.time + p.Dt)
	s.interp.BeginStep()
	t.FluidAdvance = time.Since(start)

	n := s.Particles.Len()
	if cap(s.fluidAcc) < n {
		s.fluidAcc = make([]geom.Vec3, n)
	}
	acc := s.fluidAcc[:n]
	if cap(s.fluidVel) < n {
		s.fluidVel = make([]geom.Vec3, n)
	}
	uf := s.fluidVel[:n]

	var coll []geom.Vec3
	if p.Collisions {
		start = time.Now() //lint:allow determinism wall-clock kernel timing is this file's product (Model Generator training data)
		coll = s.collide.Forces(s.Particles, p.CollisionStiffness)
		t.Collisions = time.Since(start)
	}

	// Phase 1: interpolation (grid → particle).
	start = time.Now() //lint:allow determinism wall-clock kernel timing is this file's product (Model Generator training data)
	for i := 0; i < n; i++ {
		uf[i] = s.interp.Velocity(s.Particles.Pos[i])
	}
	t.Interpolation = time.Since(start)

	// Phase 2: equation solver.
	start = time.Now() //lint:allow determinism wall-clock kernel timing is this file's product (Model Generator training data)
	for i := 0; i < n; i++ {
		a := s.drag(i, uf[i]).Add(p.Gravity)
		if coll != nil {
			a = a.Add(coll[i])
		}
		acc[i] = a
	}
	t.EqSolver = time.Since(start)

	// Phase 3: particle pusher.
	start = time.Now() //lint:allow determinism wall-clock kernel timing is this file's product (Model Generator training data)
	switch p.Pusher {
	case PushRK2:
		s.pushRK2(acc, 0, n)
	default:
		s.pushEuler(acc, 0, n)
	}
	t.Pusher = time.Since(start)

	// Phase 4: projection (particle → grid).
	start = time.Now() //lint:allow determinism wall-clock kernel timing is this file's product (Model Generator training data)
	s.projectSerial()
	t.Projection = time.Since(start)

	s.time += p.Dt
	s.step++
	return t
}

// projectSerial runs the projection phase single-threaded regardless of
// Params.Workers, for attributable timings.
func (s *Solver) projectSerial() {
	for e := range s.proj {
		s.proj[e] = 0
	}
	s.projectRange(0, s.Particles.Len(), s.proj)
}

// TimedCreateGhostParticles runs the create_ghost_particles kernel against
// a decomposition and reports its wall time alongside the ghost counts.
func (s *Solver) TimedCreateGhostParticles(d *mesh.Decomposition) (perRank []int, total int, elapsed time.Duration) {
	start := time.Now() //lint:allow determinism wall-clock kernel timing is this file's product (Model Generator training data)
	perRank, total = s.CreateGhostParticles(d)
	return perRank, total, time.Since(start)
}
