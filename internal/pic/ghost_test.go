package pic

import (
	"sort"
	"testing"

	"picpredict/internal/geom"
	"picpredict/internal/mesh"
)

// quadDecomp builds an 8×8×1 unit-box mesh decomposed across 4 ranks; with
// recursive coordinate bisection the ranks tile the four quadrants, giving
// known rank boundaries at x=0.5 and y=0.5 to probe.
func quadDecomp(t *testing.T) (*mesh.Mesh, *mesh.Decomposition) {
	t.Helper()
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), 8, 8, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mesh.Decompose(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func homeOf(m *mesh.Mesh, d *mesh.Decomposition, p geom.Vec3) int {
	return d.RankOf(m.ElementAt(p))
}

func TestGhostFinderInteriorParticleHasNoGhosts(t *testing.T) {
	m, d := quadDecomp(t)
	g := NewGhostFinder(m, d)
	// Deep inside a quadrant, with a filter radius smaller than the distance
	// to any rank boundary, no ghost is created.
	p := geom.V(0.25, 0.25, 0.5)
	home := homeOf(m, d, p)
	if got := g.Ranks(nil, p, 0.1, home); len(got) != 0 {
		t.Errorf("interior particle (radius 0.1) got ghosts on ranks %v", got)
	}
	if n := g.Count(p, 0.1, home); n != 0 {
		t.Errorf("Count = %d, want 0", n)
	}
}

func TestGhostFinderRadiusCrossesRankBoundary(t *testing.T) {
	m, d := quadDecomp(t)
	g := NewGhostFinder(m, d)
	// A particle just left of the x=0.5 rank boundary. The neighbour across
	// the boundary must appear exactly when the filter ball reaches it.
	p := geom.V(0.45, 0.25, 0.5)
	home := homeOf(m, d, p)
	across := homeOf(m, d, geom.V(0.55, 0.25, 0.5))
	if across == home {
		t.Fatalf("test geometry broken: both sides of x=0.5 owned by rank %d", home)
	}

	ghosts := func(radius float64) []int {
		out := g.Ranks(nil, p, radius, home)
		sort.Ints(out)
		return out
	}
	// Ball stops short of the boundary (0.05 away): no ghosts.
	if got := ghosts(0.04); len(got) != 0 {
		t.Errorf("radius 0.04 (short of boundary) got ghosts %v", got)
	}
	// Ball crosses the boundary: the across-rank materialises a ghost.
	got := ghosts(0.06)
	found := false
	for _, r := range got {
		if r == across {
			found = true
		}
		if r == home {
			t.Errorf("home rank %d reported as its own ghost", home)
		}
	}
	if !found {
		t.Errorf("radius 0.06 (crossing x=0.5) ghosts %v missing across-rank %d", got, across)
	}
	// Count agrees with Ranks.
	if n := g.Count(p, 0.06, home); n != len(got) {
		t.Errorf("Count = %d, Ranks returned %d", n, len(got))
	}
}

func TestGhostFinderCornerTouchesAllQuadrants(t *testing.T) {
	m, d := quadDecomp(t)
	g := NewGhostFinder(m, d)
	// At the quadrant corner (0.5, 0.5) every other rank is within any
	// positive filter radius.
	p := geom.V(0.49, 0.49, 0.5)
	home := homeOf(m, d, p)
	got := g.Ranks(nil, p, 0.05, home)
	if len(got) != d.Ranks-1 {
		t.Errorf("corner particle got ghosts on %d ranks (%v), want %d", len(got), got, d.Ranks-1)
	}
	seen := map[int]bool{}
	for _, r := range got {
		if r == home {
			t.Errorf("home rank %d in ghost set", home)
		}
		if seen[r] {
			t.Errorf("duplicate rank %d in ghost set %v", r, got)
		}
		seen[r] = true
	}
}

func TestGhostFinderDomainEdgeVsFilterRadius(t *testing.T) {
	m, d := quadDecomp(t)
	g := NewGhostFinder(m, d)
	// A particle hugging the domain wall: the part of its filter ball
	// outside the domain intersects no elements, so only real neighbour
	// ranks appear, and the query tolerates balls poking outside.
	p := geom.V(0.01, 0.01, 0.5)
	home := homeOf(m, d, p)
	if got := g.Ranks(nil, p, 0.05, home); len(got) != 0 {
		t.Errorf("wall-hugging particle (small radius) got ghosts %v", got)
	}
	// Blow the radius up past the whole domain: every other rank is a ghost
	// target, exactly once.
	got := g.Ranks(nil, p, 2, home)
	if len(got) != d.Ranks-1 {
		t.Errorf("domain-covering radius found %d ghost ranks (%v), want %d", len(got), got, d.Ranks-1)
	}
	// home = -1 excludes nothing: the home rank joins the set.
	all := g.Ranks(nil, p, 2, -1)
	if len(all) != d.Ranks {
		t.Errorf("home=-1 found %d ranks (%v), want %d", len(all), all, d.Ranks)
	}
	// Zero radius produces no ghosts regardless of position.
	if got := g.Ranks(nil, p, 0, home); len(got) != 0 {
		t.Errorf("zero radius got ghosts %v", got)
	}
}
