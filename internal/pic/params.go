// Package pic implements the particle-solver phase of a CMT-nek-style PIC
// application: the four-step PIC solver loop of §III-A —
//
//  1. Interpolation   (grid → particle): fluid velocity at particle sites,
//     trilinearly interpolated from element grid-point values;
//  2. Equation solver: drag + gravity + collision forces, conservation of
//     momentum (Eq. 2);
//  3. Particle pusher: advance positions (Eq. 1) with forward Euler or RK2;
//  4. Projection      (particle → grid): deposit particle influence onto
//     grid points within the projection filter radius, and create ghost
//     particles on neighbouring processors whose grid points the filter
//     touches.
package pic

import (
	"fmt"

	"picpredict/internal/geom"
)

// PusherKind selects the time integrator of the particle pusher.
type PusherKind int

const (
	// PushEuler is first-order forward Euler.
	PushEuler PusherKind = iota
	// PushRK2 is the explicit midpoint (second-order Runge–Kutta) method.
	PushRK2
)

// String implements fmt.Stringer.
func (k PusherKind) String() string {
	switch k {
	case PushEuler:
		return "euler"
	case PushRK2:
		return "rk2"
	default:
		return fmt.Sprintf("PusherKind(%d)", int(k))
	}
}

// Params are the physical and numerical parameters of the particle solver.
type Params struct {
	// Dt is the solver time step.
	Dt float64
	// FilterRadius is the projection filter size: the radius of particle
	// influence on neighbouring grid points (§IV-D). It also serves as the
	// threshold bin size for bin-based mapping.
	FilterRadius float64
	// Gravity is the body-force acceleration.
	Gravity geom.Vec3
	// Mu is the gas dynamic viscosity used in the Stokes drag response
	// time τ_p = ρ_p d² / (18 μ).
	Mu float64
	// Pusher selects the integrator.
	Pusher PusherKind
	// Collisions enables soft-sphere particle–particle collision forces.
	Collisions bool
	// CollisionStiffness is the spring constant of the soft-sphere model
	// (force per unit overlap, divided by particle mass at application).
	CollisionStiffness float64
	// WallRestitution scales the normal velocity on domain-wall bounces;
	// 1 is elastic, 0 is perfectly absorbing.
	WallRestitution float64
	// Workers sets the goroutine count for the per-particle phases
	// (interpolation/equation-solver/pusher and projection); 0 or 1 runs
	// serially. Particle trajectories are bit-identical for any worker
	// count; only the projection field differs by floating-point
	// reduction order.
	Workers int
}

// Validate reports the first invalid parameter.
func (p Params) Validate() error {
	switch {
	case p.Dt <= 0:
		return fmt.Errorf("pic: Dt must be positive, got %g", p.Dt)
	case p.FilterRadius < 0:
		return fmt.Errorf("pic: FilterRadius must be non-negative, got %g", p.FilterRadius)
	case p.Mu <= 0:
		return fmt.Errorf("pic: Mu must be positive, got %g", p.Mu)
	case p.WallRestitution < 0 || p.WallRestitution > 1:
		return fmt.Errorf("pic: WallRestitution must be in [0,1], got %g", p.WallRestitution)
	case p.Collisions && p.CollisionStiffness <= 0:
		return fmt.Errorf("pic: CollisionStiffness must be positive when collisions are enabled")
	}
	return nil
}
