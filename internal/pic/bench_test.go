package pic

import (
	"math/rand"
	"testing"

	"picpredict/internal/fluid"
	"picpredict/internal/geom"
	"picpredict/internal/mesh"
	"picpredict/internal/particle"
)

func benchSolver(b *testing.B, pusher PusherKind, collisions bool) *Solver {
	b.Helper()
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 0.01)), 64, 64, 1, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	ps := particle.New(10000)
	for i := 0; i < 10000; i++ {
		ps.Add(int64(i), geom.V(0.4+rng.Float64()*0.2, 0.4+rng.Float64()*0.2, rng.Float64()*0.01),
			geom.Vec3{}, 1e-4, 1200)
	}
	params := Params{
		Dt:              0.01,
		FilterRadius:    0.01,
		Mu:              1.8e-5,
		Pusher:          pusher,
		Collisions:      collisions,
		WallRestitution: 0.5,
	}
	if collisions {
		params.CollisionStiffness = 1e-4
	}
	flow := &fluid.DiaphragmBurst{Origin: geom.V(0.5, 0.5, 0), Amp: 0.001, Decay: 1, Core: 0.02}
	s, err := NewSolver(m, flow, ps, params)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// Ablation: pusher order.
func BenchmarkSolverStepEuler(b *testing.B) {
	s := benchSolver(b, PushEuler, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.ReportMetric(float64(s.Particles.Len()), "particles")
}

func BenchmarkSolverStepRK2(b *testing.B) {
	s := benchSolver(b, PushRK2, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkSolverStepWithCollisions(b *testing.B) {
	s := benchSolver(b, PushEuler, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkInterpolatorVelocity(b *testing.B) {
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 0.01)), 64, 64, 1, 4)
	if err != nil {
		b.Fatal(err)
	}
	ip := NewInterpolator(m, fluid.Vortex{Center: geom.V(0.5, 0.5, 0), Omega: 1})
	ip.BeginStep()
	rng := rand.New(rand.NewSource(4))
	pts := make([]geom.Vec3, 1024)
	for i := range pts {
		pts[i] = geom.V(rng.Float64(), rng.Float64(), rng.Float64()*0.01)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ip.Velocity(pts[i%len(pts)])
	}
}

func BenchmarkCreateGhostParticles(b *testing.B) {
	s := benchSolver(b, PushEuler, false)
	d, err := mesh.Decompose(s.Mesh, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.CreateGhostParticles(d)
	}
}
