package pic

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"picpredict/internal/fluid"
	"picpredict/internal/geom"
	"picpredict/internal/resilience"
)

// Checkpoint/restart: the long PIC campaigns this framework models are the
// canonical victims of mid-run failure, so a Solver can snapshot its full
// simulation state and restart from it. The snapshot captures everything
// the trajectory depends on — step counter, simulation time, the complete
// particle population in float64, and the gas state of Stateful flows
// (the Euler solver); analytic flows are pure functions of time and need
// nothing. The solver loop itself is RNG-free (randomness exists only in
// initial seeding), so no generator state is part of a snapshot.
//
// Binary layout, little endian, built from the checksummed frame layout of
// internal/resilience:
//
//	magic "PICCKP01"
//	frame: step uint64 | time float64 | numParticles uint64 | hasFluid uint8
//	frame: id int64×n | pos float64×3n | vel float64×3n |
//	       diameter float64×n | density float64×n
//	[frame: opaque fluid.Stateful payload]
const checkpointMagic = "PICCKP01"

const ckptMetaLen = 8 + 8 + 8 + 1

// perParticleBytes is the snapshot cost of one particle: id + position +
// velocity + diameter + density.
const perParticleBytes = 8 + 24 + 24 + 8 + 8

// WriteCheckpoint serialises the solver's full simulation state to w.
func (s *Solver) WriteCheckpoint(w io.Writer) error {
	fw := resilience.NewFrameWriter(w)
	stateful, _ := s.Flow.(fluid.Stateful)

	var meta [ckptMetaLen]byte
	binary.LittleEndian.PutUint64(meta[0:], uint64(s.step))
	binary.LittleEndian.PutUint64(meta[8:], math.Float64bits(s.time))
	binary.LittleEndian.PutUint64(meta[16:], uint64(s.Particles.Len()))
	if stateful != nil {
		meta[24] = 1
	}
	if err := fw.WriteFrame(meta[:]); err != nil {
		return fmt.Errorf("pic: writing checkpoint meta: %w", err)
	}

	ps := s.Particles
	n := ps.Len()
	if int64(n)*perParticleBytes > math.MaxUint32 {
		return fmt.Errorf("pic: %d particles exceed the checkpoint frame limit (%d)", n, math.MaxUint32/perParticleBytes)
	}
	buf := make([]byte, n*perParticleBytes)
	off := 0
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	putV := func(v geom.Vec3) { putF(v.X); putF(v.Y); putF(v.Z) }
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[off:], uint64(ps.ID[i]))
		off += 8
		putV(ps.Pos[i])
		putV(ps.Vel[i])
		putF(ps.Diameter[i])
		putF(ps.Density[i])
	}
	if err := fw.WriteFrame(buf); err != nil {
		return fmt.Errorf("pic: writing checkpoint particles: %w", err)
	}

	if stateful != nil {
		var fb bytes.Buffer
		if err := stateful.EncodeState(&fb); err != nil {
			return fmt.Errorf("pic: checkpointing fluid state: %w", err)
		}
		if err := fw.WriteFrame(fb.Bytes()); err != nil {
			return fmt.Errorf("pic: writing checkpoint fluid state: %w", err)
		}
	}
	return nil
}

// EncodeCheckpoint writes the checkpoint magic followed by the state
// frames — the standalone checkpoint-file form of WriteCheckpoint.
func (s *Solver) EncodeCheckpoint(w io.Writer) error {
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return fmt.Errorf("pic: writing checkpoint magic: %w", err)
	}
	return s.WriteCheckpoint(w)
}

// RestoreCheckpoint replaces the solver's simulation state with a snapshot
// previously written by WriteCheckpoint. The solver must have been built
// from the same configuration (same particle count, same flow kind);
// mismatches are rejected with an error rather than silently mis-restored.
func (s *Solver) RestoreCheckpoint(r io.Reader) error {
	fr := resilience.NewFrameReader(r, MaxCheckpointPayload)
	meta, err := fr.ExpectFrame(ckptMetaLen)
	if err != nil {
		return fmt.Errorf("pic: reading checkpoint meta: %w", err)
	}
	step := binary.LittleEndian.Uint64(meta[0:])
	tm := math.Float64frombits(binary.LittleEndian.Uint64(meta[8:]))
	n := binary.LittleEndian.Uint64(meta[16:])
	hasFluid := meta[24] == 1

	if int(n) != s.Particles.Len() {
		return fmt.Errorf("pic: checkpoint holds %d particles, solver was built with %d — resume with the run's original configuration", n, s.Particles.Len())
	}
	stateful, _ := s.Flow.(fluid.Stateful)
	if hasFluid && stateful == nil {
		return fmt.Errorf("pic: checkpoint carries fluid state but the solver's flow (%T) is stateless — resume with the run's original configuration", s.Flow)
	}
	if !hasFluid && stateful != nil {
		return fmt.Errorf("pic: checkpoint carries no fluid state but the solver's flow (%T) requires it — resume with the run's original configuration", s.Flow)
	}

	buf, err := fr.ExpectFrame(int(n) * perParticleBytes)
	if err != nil {
		return fmt.Errorf("pic: reading checkpoint particles: %w", err)
	}
	ps := s.Particles
	off := 0
	getF := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		return v
	}
	getV := func() geom.Vec3 { return geom.V(getF(), getF(), getF()) }
	for i := 0; i < int(n); i++ {
		ps.ID[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		ps.Pos[i] = getV()
		ps.Vel[i] = getV()
		ps.Diameter[i] = getF()
		ps.Density[i] = getF()
	}

	if hasFluid {
		payload, err := fr.ReadFrame()
		if err != nil {
			return fmt.Errorf("pic: reading checkpoint fluid state: %w", err)
		}
		if err := stateful.RestoreState(bytes.NewReader(payload)); err != nil {
			return fmt.Errorf("pic: restoring fluid state: %w", err)
		}
	}

	s.step = int(step)
	s.time = tm
	return nil
}

// DecodeCheckpoint reads the checkpoint magic then restores the state —
// the counterpart of EncodeCheckpoint.
func (s *Solver) DecodeCheckpoint(r io.Reader) error {
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("pic: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("pic: bad checkpoint magic %q", magic)
	}
	return s.RestoreCheckpoint(r)
}

// MaxCheckpointPayload bounds a checkpoint frame a reader will buffer
// (particles dominate: 72 bytes each), guarding restores against corrupt
// length prefixes just like the artefact readers.
const MaxCheckpointPayload = perParticleBytes * 50_000_000
