package pic

import (
	"math"
	"testing"

	"picpredict/internal/fluid"
	"picpredict/internal/geom"
	"picpredict/internal/mesh"
	"picpredict/internal/particle"
)

func baseParams() Params {
	return Params{
		Dt:              0.01,
		FilterRadius:    0.3,
		Mu:              1.8e-5,
		Pusher:          PushEuler,
		WallRestitution: 1,
	}
}

func solverFixture(t *testing.T, flow fluid.Flow, params Params) *Solver {
	t.Helper()
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(4, 4, 4)), 4, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps := particle.New(1)
	ps.Add(0, geom.V(2, 2, 2), geom.Vec3{}, 1e-4, 1000)
	s, err := NewSolver(m, flow, ps, params)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamsValidate(t *testing.T) {
	good := baseParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		func() Params { p := good; p.Dt = 0; return p }(),
		func() Params { p := good; p.FilterRadius = -1; return p }(),
		func() Params { p := good; p.Mu = 0; return p }(),
		func() Params { p := good; p.WallRestitution = 2; return p }(),
		func() Params { p := good; p.Collisions = true; p.CollisionStiffness = 0; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestNewSolverRejectsOutsideParticles(t *testing.T) {
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), 2, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps := particle.New(1)
	ps.Add(0, geom.V(5, 0, 0), geom.Vec3{}, 1e-4, 1000)
	if _, err := NewSolver(m, fluid.Uniform{}, ps, baseParams()); err == nil {
		t.Error("particle outside domain accepted")
	}
}

func TestParticleRelaxesToFluidVelocity(t *testing.T) {
	// In a uniform flow with no gravity, drag drives the particle to the
	// gas velocity exponentially with time constant τ_p.
	u := geom.V(0.5, 0, 0)
	s := solverFixture(t, fluid.Uniform{U: u}, baseParams())
	tau := s.Particles.Density[0] * s.Particles.Diameter[0] * s.Particles.Diameter[0] / (18 * s.Params.Mu)
	steps := int(5 * tau / s.Params.Dt) // five time constants
	if steps > 50000 {
		t.Fatalf("fixture too stiff: %d steps needed", steps)
	}
	s.Run(steps, nil)
	if got := s.Particles.Vel[0].Sub(u).Norm(); got > 0.02*u.Norm() {
		t.Errorf("particle velocity %v has not relaxed to %v", s.Particles.Vel[0], u)
	}
	if s.Particles.Pos[0].X <= 2 {
		t.Errorf("particle did not move downstream: %v", s.Particles.Pos[0])
	}
}

func TestPusherOrderEulerVsRK2(t *testing.T) {
	// In a vortex, exact motion preserves the distance to the axis. RK2
	// must lose radius far more slowly than Euler at the same dt.
	radiusError := func(k PusherKind) float64 {
		p := baseParams()
		p.Pusher = k
		p.Dt = 0.02
		m, err := mesh.New(geom.Box(geom.V(-2, -2, -2), geom.V(2, 2, 2)), 4, 4, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		ps := particle.New(1)
		// Tracer-like particle: tiny τ so it follows the gas closely.
		ps.Add(0, geom.V(1, 0, 0), geom.V(0, 1, 0), 1e-5, 10)
		s, err := NewSolver(m, fluid.Vortex{Omega: 1}, ps, p)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(int(math.Pi/p.Dt), nil) // half revolution
		r := ps.Pos[0].Norm()
		return math.Abs(r - 1)
	}
	eul, rk2 := radiusError(PushEuler), radiusError(PushRK2)
	if rk2 >= eul {
		t.Errorf("RK2 radius error %v not better than Euler %v", rk2, eul)
	}
}

func TestGravityBallistics(t *testing.T) {
	// A very heavy particle in vacuum-like gas (huge τ) must fall nearly
	// ballistically: Δy ≈ −g t²/2.
	p := baseParams()
	p.Gravity = geom.V(0, -9.8, 0)
	p.Dt = 0.001
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)), 2, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps := particle.New(1)
	ps.Add(0, geom.V(5, 9, 5), geom.Vec3{}, 0.05, 1e7) // big dense: τ huge
	s, err := NewSolver(m, fluid.Uniform{}, ps, p)
	if err != nil {
		t.Fatal(err)
	}
	steps := 500 // t = 0.5
	s.Run(steps, nil)
	tt := 0.5
	wantDy := -9.8 * tt * tt / 2
	gotDy := ps.Pos[0].Y - 9
	if math.Abs(gotDy-wantDy) > 0.02*math.Abs(wantDy) {
		t.Errorf("Δy = %v, want ≈ %v", gotDy, wantDy)
	}
}

func TestWallBounceKeepsParticlesInside(t *testing.T) {
	p := baseParams()
	p.Dt = 0.05
	p.WallRestitution = 0.5
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), 2, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps := particle.New(1)
	ps.Add(0, geom.V(0.9, 0.5, 0.5), geom.V(5, 0, 0), 1e-4, 1e7)
	s, err := NewSolver(m, fluid.Uniform{}, ps, p)
	if err != nil {
		t.Fatal(err)
	}
	dom := m.Domain()
	for i := 0; i < 200; i++ {
		s.Step()
		if !dom.ContainsClosed(ps.Pos[0]) {
			t.Fatalf("step %d: particle escaped to %v", i, ps.Pos[0])
		}
	}
}

func TestProjectionConservesVolume(t *testing.T) {
	s := solverFixture(t, fluid.Uniform{}, baseParams())
	ps := s.Particles
	ps.Add(1, geom.V(0.2, 0.2, 0.2), geom.Vec3{}, 2e-4, 500) // near corner
	s.proj = make([]float64, s.Mesh.NumElements())
	s.Step()
	total := 0.0
	for _, v := range s.Projection() {
		total += v
	}
	want := ps.Mass(0)/ps.Density[0] + ps.Mass(1)/ps.Density[1]
	if math.Abs(total-want) > 1e-15+1e-9*want {
		t.Errorf("projected volume %v, want %v", total, want)
	}
}

func TestProjectionZeroFilterDepositsHome(t *testing.T) {
	p := baseParams()
	p.FilterRadius = 0
	s := solverFixture(t, fluid.Uniform{}, p)
	s.Step()
	nonZero := 0
	for _, v := range s.Projection() {
		if v > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Errorf("zero-filter projection touched %d elements, want 1", nonZero)
	}
}

func TestCreateGhostParticles(t *testing.T) {
	p := baseParams()
	p.FilterRadius = 0.6
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(4, 4, 1)), 4, 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mesh.Decompose(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps := particle.New(2)
	// Particle at the very centre: its 0.6 ball crosses all four quadrants.
	ps.Add(0, geom.V(2, 2, 0.5), geom.Vec3{}, 1e-4, 1000)
	// Particle deep inside one quadrant: no ghosts.
	ps.Add(1, geom.V(0.7, 0.7, 0.5), geom.Vec3{}, 1e-4, 1000)
	s, err := NewSolver(m, fluid.Uniform{}, ps, p)
	if err != nil {
		t.Fatal(err)
	}
	perRank, total := s.CreateGhostParticles(d)
	if total != 3 {
		t.Errorf("total ghosts = %d, want 3 (centre particle on 3 foreign ranks)", total)
	}
	sum := 0
	for _, c := range perRank {
		sum += c
	}
	if sum != total {
		t.Errorf("perRank sum %d != total %d", sum, total)
	}
}

func TestGhostFinderScalesWithFilter(t *testing.T) {
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(8, 8, 1)), 16, 16, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mesh.Decompose(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	gf := NewGhostFinder(m, d)
	pos := geom.V(4, 4, 0.5)
	home := d.RankOf(m.ElementAt(pos))
	small := gf.Count(pos, 0.3, home)
	large := gf.Count(pos, 3.0, home)
	if small >= large {
		t.Errorf("ghost count did not grow with filter: %d vs %d", small, large)
	}
	if got := gf.Count(pos, 0, home); got != 0 {
		t.Errorf("zero filter produced %d ghosts", got)
	}
}

func TestGhostFinderNoDuplicates(t *testing.T) {
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(4, 4, 1)), 8, 8, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mesh.Decompose(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	gf := NewGhostFinder(m, d)
	ranks := gf.Ranks(nil, geom.V(2, 2, 0.5), 2.5, -1)
	seen := map[int]bool{}
	for _, r := range ranks {
		if seen[r] {
			t.Fatalf("duplicate rank %d in %v", r, ranks)
		}
		seen[r] = true
	}
	if len(ranks) != 4 {
		t.Errorf("big ball found %d ranks, want 4", len(ranks))
	}
}

func TestRunObserveCallback(t *testing.T) {
	s := solverFixture(t, fluid.Uniform{}, baseParams())
	var steps []int
	s.Run(3, func(step int) { steps = append(steps, step) })
	if len(steps) != 3 || steps[0] != 1 || steps[2] != 3 {
		t.Errorf("observe steps = %v", steps)
	}
	if s.StepCount() != 3 {
		t.Errorf("StepCount = %d", s.StepCount())
	}
	if math.Abs(s.Time()-3*s.Params.Dt) > 1e-12 {
		t.Errorf("Time = %v", s.Time())
	}
}

func TestCollisionsSeparateOverlappingPair(t *testing.T) {
	p := baseParams()
	p.Collisions = true
	p.CollisionStiffness = 1e-3
	p.Dt = 0.001
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), 2, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps := particle.New(2)
	ps.Add(0, geom.V(0.49, 0.5, 0.5), geom.Vec3{}, 0.05, 100)
	ps.Add(1, geom.V(0.51, 0.5, 0.5), geom.Vec3{}, 0.05, 100)
	s, err := NewSolver(m, fluid.Uniform{}, ps, p)
	if err != nil {
		t.Fatal(err)
	}
	d0 := ps.Pos[1].Sub(ps.Pos[0]).Norm()
	s.Run(100, nil)
	d1 := ps.Pos[1].Sub(ps.Pos[0]).Norm()
	if d1 <= d0 {
		t.Errorf("overlapping particles did not separate: %v -> %v", d0, d1)
	}
}

func TestParallelSolverMatchesSerial(t *testing.T) {
	run := func(workers int, pusher PusherKind) *particle.Set {
		m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 0.01)), 16, 16, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		ps := particle.New(500)
		for i := 0; i < 500; i++ {
			x := 0.3 + 0.4*float64(i%25)/25
			y := 0.3 + 0.4*float64(i/25)/20
			ps.Add(int64(i), geom.V(x, y, 0.005), geom.Vec3{}, 1e-4, 1200)
		}
		params := Params{
			Dt:              0.01,
			FilterRadius:    0.02,
			Mu:              1.8e-5,
			Pusher:          pusher,
			WallRestitution: 0.5,
			Workers:         workers,
		}
		flow := &fluid.DiaphragmBurst{Origin: geom.V(0.5, 0.5, 0), Amp: 0.002, Decay: 1, Core: 0.05}
		s, err := NewSolver(m, flow, ps, params)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(25, nil)
		return ps
	}
	for _, pusher := range []PusherKind{PushEuler, PushRK2} {
		serial := run(1, pusher)
		parallel := run(4, pusher)
		for i := 0; i < serial.Len(); i++ {
			if serial.Pos[i] != parallel.Pos[i] || serial.Vel[i] != parallel.Vel[i] {
				t.Fatalf("%v: particle %d differs: %v vs %v", pusher, i, serial.Pos[i], parallel.Pos[i])
			}
		}
	}
}

func TestParallelProjectionConservesVolume(t *testing.T) {
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 0.01)), 8, 8, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps := particle.New(200)
	for i := 0; i < 200; i++ {
		ps.Add(int64(i), geom.V(0.1+0.8*float64(i)/200, 0.5, 0.005), geom.Vec3{}, 1e-4, 1000)
	}
	p := baseParams()
	p.FilterRadius = 0.05
	p.Workers = 3
	s, err := NewSolver(m, fluid.Uniform{}, ps, p)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	total := 0.0
	for _, v := range s.Projection() {
		total += v
	}
	want := 0.0
	for i := 0; i < ps.Len(); i++ {
		want += ps.Mass(i) / ps.Density[i]
	}
	if math.Abs(total-want) > 1e-12*want {
		t.Errorf("parallel projected volume %v, want %v", total, want)
	}
}

func TestStepInstrumentedMatchesStep(t *testing.T) {
	build := func() *Solver {
		m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 0.01)), 16, 16, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		ps := particle.New(300)
		for i := 0; i < 300; i++ {
			ps.Add(int64(i), geom.V(0.3+0.4*float64(i%20)/20, 0.3+0.4*float64(i/20)/15, 0.005),
				geom.Vec3{}, 1e-4, 1200)
		}
		p := baseParams()
		p.FilterRadius = 0.02
		p.Collisions = true
		p.CollisionStiffness = 1e-5
		flow := &fluid.DiaphragmBurst{Origin: geom.V(0.5, 0.5, 0), Amp: 0.002, Decay: 1, Core: 0.05}
		s, err := NewSolver(m, flow, ps, p)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain := build()
	inst := build()
	for step := 0; step < 10; step++ {
		plain.Step()
		timings := inst.StepInstrumented()
		if timings.Interpolation < 0 || timings.Projection < 0 {
			t.Fatal("negative timing")
		}
		for i := 0; i < plain.Particles.Len(); i++ {
			if plain.Particles.Pos[i] != inst.Particles.Pos[i] || plain.Particles.Vel[i] != inst.Particles.Vel[i] {
				t.Fatalf("step %d particle %d: instrumented state diverged", step, i)
			}
		}
	}
	// Projection fields agree too.
	for e := range plain.Projection() {
		if math.Abs(plain.Projection()[e]-inst.Projection()[e]) > 1e-18 {
			t.Fatalf("projection field diverged at element %d", e)
		}
	}
	if plain.StepCount() != inst.StepCount() || plain.Time() != inst.Time() {
		t.Error("clock/step mismatch")
	}
}

func TestTimedCreateGhostParticles(t *testing.T) {
	s := solverFixture(t, fluid.Uniform{}, baseParams())
	d, err := mesh.Decompose(s.Mesh, 8)
	if err != nil {
		t.Fatal(err)
	}
	perRank, total, elapsed := s.TimedCreateGhostParticles(d)
	wantRank, wantTotal := s.CreateGhostParticles(d)
	if total != wantTotal || elapsed < 0 {
		t.Errorf("timed ghosts: %d vs %d, %v", total, wantTotal, elapsed)
	}
	for r := range perRank {
		if perRank[r] != wantRank[r] {
			t.Errorf("rank %d: %d vs %d", r, perRank[r], wantRank[r])
		}
	}
}

func TestPusherKindString(t *testing.T) {
	if PushEuler.String() != "euler" || PushRK2.String() != "rk2" {
		t.Errorf("pusher strings: %q, %q", PushEuler, PushRK2)
	}
	if s := PusherKind(7).String(); s != "PusherKind(7)" {
		t.Errorf("unknown pusher string %q", s)
	}
}
