package pic

import (
	"math"
	"math/rand"
	"testing"

	"picpredict/internal/geom"
	"picpredict/internal/particle"
)

func TestColliderNoOverlapNoForce(t *testing.T) {
	s := particle.New(2)
	s.Add(0, geom.V(0, 0, 0), geom.Vec3{}, 0.1, 1000)
	s.Add(1, geom.V(1, 0, 0), geom.Vec3{}, 0.1, 1000)
	c := newCollider()
	acc := c.Forces(s, 100)
	for i, a := range acc {
		if a != (geom.Vec3{}) {
			t.Errorf("particle %d acc = %v, want zero", i, a)
		}
	}
}

func TestColliderOverlapRepels(t *testing.T) {
	s := particle.New(2)
	s.Add(0, geom.V(0, 0, 0), geom.Vec3{}, 0.2, 1000)
	s.Add(1, geom.V(0.1, 0, 0), geom.Vec3{}, 0.2, 1000) // overlap 0.1
	c := newCollider()
	acc := c.Forces(s, 50)
	if acc[0].X >= 0 {
		t.Errorf("particle 0 pushed toward 1: %v", acc[0])
	}
	if acc[1].X <= 0 {
		t.Errorf("particle 1 pushed toward 0: %v", acc[1])
	}
	// Newton's third law in force terms: m0·a0 = −m1·a1.
	f0 := acc[0].Scale(s.Mass(0))
	f1 := acc[1].Scale(s.Mass(1))
	if f0.Add(f1).Norm() > 1e-12 {
		t.Errorf("forces not balanced: %v vs %v", f0, f1)
	}
	// Magnitude: stiffness × overlap.
	wantF := 50 * 0.1
	if got := f1.Norm(); math.Abs(got-wantF) > 1e-9 {
		t.Errorf("force magnitude = %v, want %v", got, wantF)
	}
}

func TestColliderCoincidentParticlesNoNaN(t *testing.T) {
	s := particle.New(2)
	s.Add(0, geom.V(1, 1, 1), geom.Vec3{}, 0.2, 1000)
	s.Add(1, geom.V(1, 1, 1), geom.Vec3{}, 0.2, 1000)
	c := newCollider()
	acc := c.Forces(s, 50)
	for i, a := range acc {
		if math.IsNaN(a.Norm()) {
			t.Errorf("particle %d acc is NaN", i)
		}
	}
}

func TestColliderMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := particle.New(60)
	for i := 0; i < 60; i++ {
		s.Add(int64(i),
			geom.V(rng.Float64(), rng.Float64(), rng.Float64()),
			geom.Vec3{}, 0.12, 800)
	}
	c := newCollider()
	got := c.Forces(s, 30)

	want := make([]geom.Vec3, s.Len())
	for i := 0; i < s.Len(); i++ {
		for j := i + 1; j < s.Len(); j++ {
			d := s.Pos[j].Sub(s.Pos[i])
			touch := (s.Diameter[i] + s.Diameter[j]) / 2
			dist := d.Norm()
			if dist >= touch || dist == 0 {
				continue
			}
			f := d.Scale(1 / dist).Scale(30 * (touch - dist))
			want[i] = want[i].Sub(f.Scale(1 / s.Mass(i)))
			want[j] = want[j].Add(f.Scale(1 / s.Mass(j)))
		}
	}
	for i := range want {
		if got[i].Sub(want[i]).Norm() > 1e-9*(1+want[i].Norm()) {
			t.Errorf("particle %d: grid %v brute %v", i, got[i], want[i])
		}
	}
}

func TestColliderNegativeCoordinates(t *testing.T) {
	// floorDiv must bin negative coordinates correctly; two touching
	// particles straddling the origin must interact.
	s := particle.New(2)
	s.Add(0, geom.V(-0.01, 0, 0), geom.Vec3{}, 0.1, 1000)
	s.Add(1, geom.V(0.01, 0, 0), geom.Vec3{}, 0.1, 1000)
	c := newCollider()
	acc := c.Forces(s, 10)
	if acc[0] == (geom.Vec3{}) || acc[1] == (geom.Vec3{}) {
		t.Error("particles straddling origin did not interact")
	}
}

func TestColliderEmptySet(t *testing.T) {
	c := newCollider()
	if acc := c.Forces(particle.New(0), 10); len(acc) != 0 {
		t.Errorf("empty set returned %d accelerations", len(acc))
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct {
		x, d float64
		want int
	}{
		{0.5, 1, 0}, {1.5, 1, 1}, {-0.5, 1, -1}, {-1, 1, -1}, {2, 1, 2}, {-2.5, 1, -3},
	}
	for _, c := range cases {
		if got := floorDiv(c.x, c.d); got != c.want {
			t.Errorf("floorDiv(%v, %v) = %d, want %d", c.x, c.d, got, c.want)
		}
	}
}
