package pic

import (
	"sync"

	"picpredict/internal/fluid"
	"picpredict/internal/geom"
	"picpredict/internal/mesh"
)

// Interpolator performs the grid→particle interpolation phase: it samples
// the fluid velocity at the N×N×N grid points of each element that hosts
// particles, then trilinearly interpolates those nodal values to particle
// positions. Element nodal fields are built lazily per step so cost scales
// with the number of occupied elements, as in the real application where
// only local element data is touched.
//
// Velocity is safe for concurrent use (the parallel solver calls it from
// worker goroutines): cache hits take a read lock; misses build the nodal
// field under the write lock with a double-check.
type Interpolator struct {
	mesh *mesh.Mesh
	flow fluid.Flow

	// nodal velocity cache, keyed by element id; cleared every step.
	mu    sync.RWMutex
	cache map[int][]geom.Vec3
	// stats
	nodesBuilt int
}

// NewInterpolator creates an interpolator over m sampling flow.
func NewInterpolator(m *mesh.Mesh, flow fluid.Flow) *Interpolator {
	return &Interpolator{mesh: m, flow: flow, cache: make(map[int][]geom.Vec3)}
}

// BeginStep invalidates cached nodal fields; call once per solver step after
// advancing the flow. Not safe concurrently with Velocity.
func (ip *Interpolator) BeginStep() {
	clear(ip.cache)
	ip.nodesBuilt = 0
}

// NodesBuilt reports how many element nodal fields were constructed since
// the last BeginStep, an instrumentation counter for the interpolation
// kernel model.
func (ip *Interpolator) NodesBuilt() int { return ip.nodesBuilt }

// nodal returns (building if needed) the nodal velocity field of element e.
// Nodes are laid out x-fastest with N points per axis spanning the element
// box inclusively.
func (ip *Interpolator) nodal(e int) []geom.Vec3 {
	ip.mu.RLock()
	f, ok := ip.cache[e]
	ip.mu.RUnlock()
	if ok {
		return f
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	if f, ok := ip.cache[e]; ok { // double-check: another worker built it
		return f
	}
	n := ip.mesh.N
	box := ip.mesh.ElementBox(e)
	ext := box.Extent()
	f = make([]geom.Vec3, n*n*n)
	denom := float64(n - 1)
	if n == 1 {
		denom = 1
	}
	idx := 0
	for k := 0; k < n; k++ {
		z := box.Lo.Z + ext.Z*float64(k)/denom
		for j := 0; j < n; j++ {
			y := box.Lo.Y + ext.Y*float64(j)/denom
			for i := 0; i < n; i++ {
				x := box.Lo.X + ext.X*float64(i)/denom
				f[idx] = ip.flow.Velocity(geom.V(x, y, z))
				idx++
			}
		}
	}
	ip.cache[e] = f
	ip.nodesBuilt++
	return f
}

// Velocity returns the fluid velocity interpolated to point p. Points
// outside the mesh domain are clamped onto it first, matching the clamped
// particle positions maintained by the solver.
func (ip *Interpolator) Velocity(p geom.Vec3) geom.Vec3 {
	d := ip.mesh.Domain()
	p = p.Clamp(d.Lo, d.Hi)
	e := ip.mesh.ElementAt(p)
	if e < 0 {
		return geom.Vec3{}
	}
	return ip.velocityNodal(e, ip.nodal(e), p)
}

// velocityNodal interpolates the nodal field f of element e to the clamped
// in-element point p. The tiled solver loop fetches f once per element tile
// and calls this for every resident particle, skipping the cache lookup;
// the arithmetic is exactly Velocity's, so results are bit-identical on
// either path.
func (ip *Interpolator) velocityNodal(e int, f []geom.Vec3, p geom.Vec3) geom.Vec3 {
	n := ip.mesh.N
	if n == 1 {
		return f[0]
	}
	box := ip.mesh.ElementBox(e)
	ext := box.Extent()
	// Local coordinates in node units [0, n-1].
	tx := local(p.X, box.Lo.X, ext.X, n)
	ty := local(p.Y, box.Lo.Y, ext.Y, n)
	tz := local(p.Z, box.Lo.Z, ext.Z, n)
	i0, fx := splitCoord(tx, n)
	j0, fy := splitCoord(ty, n)
	k0, fz := splitCoord(tz, n)
	at := func(i, j, k int) geom.Vec3 { return f[i+n*(j+n*k)] }
	// Trilinear blend of the 8 surrounding nodes.
	lerp := func(a, b geom.Vec3, t float64) geom.Vec3 { return a.Add(b.Sub(a).Scale(t)) }
	c00 := lerp(at(i0, j0, k0), at(i0+1, j0, k0), fx)
	c10 := lerp(at(i0, j0+1, k0), at(i0+1, j0+1, k0), fx)
	c01 := lerp(at(i0, j0, k0+1), at(i0+1, j0, k0+1), fx)
	c11 := lerp(at(i0, j0+1, k0+1), at(i0+1, j0+1, k0+1), fx)
	c0 := lerp(c00, c10, fy)
	c1 := lerp(c01, c11, fy)
	return lerp(c0, c1, fz)
}

// local maps coordinate x inside [lo, lo+ext] to node units [0, n-1].
func local(x, lo, ext float64, n int) float64 {
	if ext <= 0 {
		return 0
	}
	t := (x - lo) / ext * float64(n-1)
	if t < 0 {
		return 0
	}
	if t > float64(n-1) {
		return float64(n - 1)
	}
	return t
}

// splitCoord splits a node-unit coordinate into a base node index in
// [0, n-2] and a fraction in [0, 1].
func splitCoord(t float64, n int) (int, float64) {
	i := int(t)
	if i > n-2 {
		i = n - 2
	}
	return i, t - float64(i)
}
