package pic

import (
	"math"

	"picpredict/internal/geom"
	"picpredict/internal/particle"
)

// collider computes soft-sphere particle–particle collision forces with a
// uniform-grid broad phase. CMT-nek adds collision forces to the fluid
// forces when solving Eq. 2 (§III-A); this is the same model at the fidelity
// the workload study needs: an O(N) neighbour search plus a linear-spring
// normal force.
type collider struct {
	cellSize float64
	cells    map[cellKey][]int
	// scratch accelerations, reused between steps
	acc []geom.Vec3
}

type cellKey struct{ i, j, k int32 }

func newCollider() *collider { return &collider{cells: make(map[cellKey][]int)} }

func (c *collider) key(p geom.Vec3) cellKey {
	return cellKey{
		i: int32(floorDiv(p.X, c.cellSize)),
		j: int32(floorDiv(p.Y, c.cellSize)),
		k: int32(floorDiv(p.Z, c.cellSize)),
	}
}

func floorDiv(x, d float64) int {
	t := x / d
	i := int(t)
	//lint:allow floatcmp exact integrality test: floor correction must fire iff truncation actually rounded
	if t < 0 && float64(i) != t {
		i--
	}
	return i
}

// Forces returns per-particle collision accelerations for set s using a
// linear spring of the given stiffness on pair overlap. The returned slice
// is reused across calls; callers must not retain it.
func (c *collider) Forces(s *particle.Set, stiffness float64) []geom.Vec3 {
	n := s.Len()
	if cap(c.acc) < n {
		c.acc = make([]geom.Vec3, n)
	}
	acc := c.acc[:n]
	for i := range acc {
		acc[i] = geom.Vec3{}
	}
	if n == 0 {
		return acc
	}
	// Broad-phase cell size: largest diameter (pairs farther apart than
	// the sum of radii ≤ 2·maxRadius = maxDiameter cannot touch).
	maxD := 0.0
	for i := 0; i < n; i++ {
		if s.Diameter[i] > maxD {
			maxD = s.Diameter[i]
		}
	}
	if maxD <= 0 {
		return acc
	}
	c.cellSize = maxD
	clear(c.cells)
	for i := 0; i < n; i++ {
		k := c.key(s.Pos[i])
		c.cells[k] = append(c.cells[k], i)
	}
	// Narrow phase: visit each particle's 27-cell neighbourhood, applying
	// each pair once (i < j).
	for i := 0; i < n; i++ {
		ki := c.key(s.Pos[i])
		for dk := int32(-1); dk <= 1; dk++ {
			for dj := int32(-1); dj <= 1; dj++ {
				for di := int32(-1); di <= 1; di++ {
					neigh := cellKey{ki.i + di, ki.j + dj, ki.k + dk}
					for _, j := range c.cells[neigh] {
						if j <= i {
							continue
						}
						c.pair(s, i, j, stiffness, acc)
					}
				}
			}
		}
	}
	return acc
}

// pair applies the spring force between particles i and j if they overlap.
func (c *collider) pair(s *particle.Set, i, j int, stiffness float64, acc []geom.Vec3) {
	d := s.Pos[j].Sub(s.Pos[i])
	dist2 := d.Norm2()
	touch := (s.Diameter[i] + s.Diameter[j]) / 2
	if dist2 >= touch*touch || dist2 == 0 {
		return
	}
	dist := math.Sqrt(dist2)
	overlap := touch - dist
	dir := d.Scale(1 / dist)
	f := dir.Scale(stiffness * overlap) // force magnitude, Newton-wise
	// Equal and opposite; convert to acceleration by each particle's mass.
	acc[i] = acc[i].Sub(f.Scale(1 / s.Mass(i)))
	acc[j] = acc[j].Add(f.Scale(1 / s.Mass(j)))
}
