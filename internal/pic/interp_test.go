package pic

import (
	"math"
	"testing"

	"picpredict/internal/fluid"
	"picpredict/internal/geom"
	"picpredict/internal/mesh"
)

// linearFlow is u(p) = A·p + b, which trilinear interpolation must reproduce
// exactly at any point.
type linearFlow struct{}

func (linearFlow) Advance(float64) {}
func (linearFlow) Velocity(p geom.Vec3) geom.Vec3 {
	return geom.V(2*p.X+1, -3*p.Y+0.5*p.X, p.Z+p.Y)
}

func testMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(2, 2, 2)), 4, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInterpolatorReproducesLinearField(t *testing.T) {
	m := testMesh(t)
	ip := NewInterpolator(m, linearFlow{})
	ip.BeginStep()
	pts := []geom.Vec3{
		{X: 0.1, Y: 0.1, Z: 0.1},
		{X: 1.0, Y: 1.0, Z: 1.0},   // element boundary
		{X: 0.499, Y: 1.7, Z: 0.2}, // interior
		{X: 2, Y: 2, Z: 2},         // domain corner
		{X: 0, Y: 0, Z: 0},
	}
	var lf linearFlow
	for _, p := range pts {
		got := ip.Velocity(p)
		want := lf.Velocity(p)
		if got.Sub(want).Norm() > 1e-12 {
			t.Errorf("Velocity(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestInterpolatorCacheCounts(t *testing.T) {
	m := testMesh(t)
	ip := NewInterpolator(m, fluid.Uniform{U: geom.V(1, 0, 0)})
	ip.BeginStep()
	p := geom.V(0.1, 0.1, 0.1)
	ip.Velocity(p)
	ip.Velocity(p.Add(geom.V(0.05, 0, 0))) // same element
	if ip.NodesBuilt() != 1 {
		t.Errorf("NodesBuilt = %d, want 1 (cache hit expected)", ip.NodesBuilt())
	}
	ip.Velocity(geom.V(1.9, 1.9, 1.9)) // different element
	if ip.NodesBuilt() != 2 {
		t.Errorf("NodesBuilt = %d, want 2", ip.NodesBuilt())
	}
	ip.BeginStep()
	ip.Velocity(p)
	if ip.NodesBuilt() != 1 {
		t.Errorf("NodesBuilt after BeginStep = %d, want 1", ip.NodesBuilt())
	}
}

func TestInterpolatorClampsOutsidePoints(t *testing.T) {
	m := testMesh(t)
	ip := NewInterpolator(m, linearFlow{})
	ip.BeginStep()
	got := ip.Velocity(geom.V(-5, 1, 1))
	want := (linearFlow{}).Velocity(geom.V(0, 1, 1))
	if got.Sub(want).Norm() > 1e-12 {
		t.Errorf("clamped Velocity = %v, want %v", got, want)
	}
}

func TestInterpolatorN1Mesh(t *testing.T) {
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), 2, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ip := NewInterpolator(m, fluid.Uniform{U: geom.V(3, 2, 1)})
	ip.BeginStep()
	if got := ip.Velocity(geom.V(0.7, 0.2, 0.9)); got != geom.V(3, 2, 1) {
		t.Errorf("Velocity = %v", got)
	}
}

func TestInterpolatorSmoothFieldAccuracy(t *testing.T) {
	// Trilinear interpolation of a smooth field converges as O(h²); on a
	// fine mesh the error should be small.
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), 8, 8, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	sin := flowFunc(func(p geom.Vec3) geom.Vec3 {
		return geom.V(math.Sin(3*p.X), math.Cos(2*p.Y), math.Sin(p.Z+p.X))
	})
	ip := NewInterpolator(m, sin)
	ip.BeginStep()
	maxErr := 0.0
	for _, p := range []geom.Vec3{{X: 0.11, Y: 0.52, Z: 0.33}, {X: 0.77, Y: 0.18, Z: 0.95}, {X: 0.5, Y: 0.5, Z: 0.5}} {
		err := ip.Velocity(p).Sub(sin.Velocity(p)).Norm()
		if err > maxErr {
			maxErr = err
		}
	}
	if maxErr > 5e-3 {
		t.Errorf("interpolation error %v too large", maxErr)
	}
}

type flowFunc func(geom.Vec3) geom.Vec3

func (flowFunc) Advance(float64)                  {}
func (f flowFunc) Velocity(p geom.Vec3) geom.Vec3 { return f(p) }
