package pic

import (
	"picpredict/internal/geom"
	"picpredict/internal/mesh"
)

// GhostFinder identifies, for a particle at a given position, the set of
// processor ranks other than its home rank whose grid domain lies within the
// projection filter radius. On each such rank the application materialises a
// ghost particle (the create_ghost_particles kernel of §IV-D): a copy whose
// influence is felt on grid points local to that rank even though the
// particle itself resides elsewhere.
type GhostFinder struct {
	q *mesh.SphereOwners
}

// NewGhostFinder creates a finder for the given mesh and element
// decomposition.
func NewGhostFinder(m *mesh.Mesh, d *mesh.Decomposition) *GhostFinder {
	return &GhostFinder{q: mesh.NewSphereOwners(m, d)}
}

// Ranks appends to dst every rank (≠ home; pass home = -1 to exclude none)
// owning at least one element that intersects the ball (pos, radius), and
// returns the extended slice. The result has no duplicates; order is not
// specified. Internal buffers are reused, so Ranks is not safe for
// concurrent use on one finder.
func (g *GhostFinder) Ranks(dst []int, pos geom.Vec3, radius float64, home int) []int {
	return g.q.Ranks(dst, pos, radius, home)
}

// Count returns the number of ghost ranks for a particle without
// accumulating them.
func (g *GhostFinder) Count(pos geom.Vec3, radius float64, home int) int {
	return len(g.Ranks(nil, pos, radius, home))
}
