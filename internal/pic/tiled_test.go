package pic

import (
	"fmt"
	"testing"

	"picpredict/internal/fluid"
	"picpredict/internal/geom"
	"picpredict/internal/mesh"
	"picpredict/internal/particle"
)

// tiledFixture builds a solver over a sheared cloud in a spatially varying
// flow; scalar forces the per-particle reference loops instead of the
// element-tiled default.
func tiledFixture(t *testing.T, workers int, pusher PusherKind, collisions, scalar bool) *Solver {
	t.Helper()
	m, err := mesh.New(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 0.01)), 16, 16, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps := particle.New(500)
	for i := 0; i < 500; i++ {
		x := 0.25 + 0.5*float64(i%25)/25
		y := 0.25 + 0.5*float64(i/25)/20
		ps.Add(int64(i), geom.V(x, y, 0.005), geom.Vec3{}, 1e-4, 1200)
	}
	params := Params{
		Dt:              0.01,
		FilterRadius:    0.02,
		Mu:              1.8e-5,
		Pusher:          pusher,
		WallRestitution: 0.5,
		Workers:         workers,
	}
	if collisions {
		params.Collisions = true
		params.CollisionStiffness = 1e-5
	}
	flow := &fluid.DiaphragmBurst{Origin: geom.V(0.5, 0.5, 0), Amp: 0.002, Decay: 1, Core: 0.05}
	s, err := NewSolver(m, flow, ps, params)
	if err != nil {
		t.Fatal(err)
	}
	s.scalarPhases = scalar
	return s
}

// TestTiledStepMatchesScalar is the solver half of the tiled-layout
// contract: processing particles element-tile by element-tile must leave
// every particle and the projection field bit-identical to the per-particle
// reference loop, for both pushers, serial and parallel, with and without
// collision forces.
func TestTiledStepMatchesScalar(t *testing.T) {
	for _, pusher := range []PusherKind{PushEuler, PushRK2} {
		for _, workers := range []int{0, 4} {
			for _, collisions := range []bool{false, true} {
				t.Run(fmt.Sprintf("%v/w=%d/coll=%v", pusher, workers, collisions), func(t *testing.T) {
					ref := tiledFixture(t, workers, pusher, collisions, true)
					got := tiledFixture(t, workers, pusher, collisions, false)
					for step := 0; step < 25; step++ {
						ref.Step()
						got.Step()
						for i := 0; i < ref.Particles.Len(); i++ {
							if ref.Particles.Pos[i] != got.Particles.Pos[i] || ref.Particles.Vel[i] != got.Particles.Vel[i] {
								t.Fatalf("step %d particle %d: scalar %v/%v tiled %v/%v",
									step, i, ref.Particles.Pos[i], ref.Particles.Vel[i],
									got.Particles.Pos[i], got.Particles.Vel[i])
							}
						}
					}
					for e := range ref.Projection() {
						if ref.Projection()[e] != got.Projection()[e] {
							t.Fatalf("projection diverged at element %d: %v vs %v",
								e, ref.Projection()[e], got.Projection()[e])
						}
					}
					if ref.interp.NodesBuilt() != got.interp.NodesBuilt() {
						t.Fatalf("nodal builds diverged: scalar %d tiled %d",
							ref.interp.NodesBuilt(), got.interp.NodesBuilt())
					}
				})
			}
		}
	}
}

// TestTiledCreateGhostParticlesMatchesScalar checks the batched ghost
// kernel: per-rank ghost counts from the tile-grouped SphereOwners query
// must equal the scalar per-particle loop's for every filter radius,
// including radius zero (no ghosts).
func TestTiledCreateGhostParticlesMatchesScalar(t *testing.T) {
	for _, radius := range []float64{0, 0.01, 0.08, 0.4} {
		s := tiledFixture(t, 0, PushEuler, false, false)
		d, err := mesh.Decompose(s.Mesh, 8)
		if err != nil {
			t.Fatal(err)
		}
		s.Params.FilterRadius = radius
		gotRanks, gotTotal := s.CreateGhostParticles(d)
		s.scalarPhases = true
		wantRanks, wantTotal := s.CreateGhostParticles(d)
		if gotTotal != wantTotal {
			t.Fatalf("radius %g: tiled total %d, scalar %d", radius, gotTotal, wantTotal)
		}
		for r := range wantRanks {
			if gotRanks[r] != wantRanks[r] {
				t.Fatalf("radius %g rank %d: tiled %d, scalar %d", radius, r, gotRanks[r], wantRanks[r])
			}
		}
	}
}
