// Benchmarks for the dynamic load-balancing axis: one full
// generate-and-predict query per policy over a clustered Hele-Shaw trace,
// reporting the predicted wall time, the priced migration cost, and the
// epoch count alongside the pipeline's own run time. pipeline_bench.sh
// collects these into the rebalance section of BENCH_pipeline.json.
package picpredict_test

import (
	"context"
	"sync"
	"testing"

	"picpredict"
)

var (
	rebalBenchOnce   sync.Once
	rebalBenchTrace  *picpredict.Trace
	rebalBenchModels picpredict.Models
	rebalBenchErr    error
)

// rebalBenchScenario is a bed-dispersal-like configuration: a particle
// cluster drifting across a 48×48 element sheet, enough frames for the
// policies to fire repeatedly.
func rebalBenchScenario() picpredict.Scenario {
	return picpredict.HeleShaw().
		WithParticles(2000).
		WithElements(48, 48, 1).
		WithSteps(400).
		WithSampleEvery(20)
}

func rebalBenchSetup(b *testing.B) (*picpredict.Trace, picpredict.Models) {
	b.Helper()
	rebalBenchOnce.Do(func() {
		sc := rebalBenchScenario()
		rebalBenchTrace, rebalBenchErr = sc.Run()
		if rebalBenchErr != nil {
			return
		}
		rebalBenchModels, rebalBenchErr = picpredict.TrainModels(picpredict.TrainOptions{Seed: 1, Fast: true})
	})
	if rebalBenchErr != nil {
		b.Fatal(rebalBenchErr)
	}
	return rebalBenchTrace, rebalBenchModels
}

// benchRebalancePolicy times one trace→workload→prediction query under the
// given policy spec ("" = static bisection) and reports the model outputs.
func benchRebalancePolicy(b *testing.B, spec string) {
	tr, models := rebalBenchSetup(b)
	q := picpredict.QueryOptions{
		Workload: picpredict.WorkloadOptions{
			Ranks:        256,
			Mapping:      picpredict.MappingElement,
			Rebalance:    spec,
			FilterRadius: rebalBenchScenario().FilterRadius(),
		},
		TotalElements: 16384,
		GridN:         4,
	}
	var wl *picpredict.Workload
	var pred *picpredict.Prediction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		wl, pred, err = picpredict.PredictFromTrace(context.Background(), tr, models, q)
		if err != nil {
			b.Fatal(err)
		}
	}
	elems, parts := wl.MigrationTotals()
	b.ReportMetric(pred.Total, "predicted_s")
	b.ReportMetric(pred.MigrationSec(), "migration_s")
	b.ReportMetric(float64(wl.MigrationEpochs()), "epochs")
	b.ReportMetric(float64(elems), "mig_elems")
	b.ReportMetric(float64(parts), "mig_parts")
}

func BenchmarkRebalanceStatic(b *testing.B)    { benchRebalancePolicy(b, "") }
func BenchmarkRebalancePeriodic(b *testing.B)  { benchRebalancePolicy(b, "periodic:4") }
func BenchmarkRebalanceThreshold(b *testing.B) { benchRebalancePolicy(b, "threshold:1.5") }
func BenchmarkRebalanceDiffusion(b *testing.B) { benchRebalancePolicy(b, "diffusion:1.5/3") }
