package picpredict

import (
	"fmt"
	"sort"

	"picpredict/internal/kernels"
	"picpredict/internal/perfmodel"
)

// ModelKind names a Model Generator variant — the model-kind parameter a
// serving query (or a caller with an artefact in hand) selects training by.
type ModelKind string

const (
	// ModelSynthetic trains against the deterministic synthetic testbed
	// (reproducible across hosts; the default).
	ModelSynthetic ModelKind = "synthetic"
	// ModelWallClock benchmarks by executing and timing the kernel bodies
	// on this host.
	ModelWallClock ModelKind = "wallclock"
	// ModelApp trains against the instrumented application: the real PIC
	// solver runs with per-phase timing (§II-B).
	ModelApp ModelKind = "app"
)

// ModelKinds lists every Model Generator variant a serving query may
// select, default first.
func ModelKinds() []ModelKind {
	return []ModelKind{ModelSynthetic, ModelWallClock, ModelApp}
}

// ParseModelKind validates a model-kind string; empty means ModelSynthetic.
func ParseModelKind(s string) (ModelKind, error) {
	switch ModelKind(s) {
	case "", ModelSynthetic:
		return ModelSynthetic, nil
	case ModelWallClock:
		return ModelWallClock, nil
	case ModelApp:
		return ModelApp, nil
	default:
		return "", fmt.Errorf("picpredict: unknown model kind %q (synthetic, wallclock, app)", s)
	}
}

// TrainModelsKind is the kind-dispatched Model Generator entry point: one
// call trains whichever variant kind names, with opts carrying the shared
// knobs (Seed, Fast; Noise applies to the synthetic testbed only). It is
// the training function the serving layer's model registry runs on a cache
// miss.
func TrainModelsKind(kind ModelKind, opts TrainOptions) (Models, error) {
	k, err := ParseModelKind(string(kind))
	if err != nil {
		return Models{}, err
	}
	switch k {
	case ModelWallClock:
		opts.WallClock = true
		return TrainModels(opts)
	case ModelApp:
		return TrainModelsFromApp(AppTrainOptions{Seed: opts.Seed, Fast: opts.Fast})
	default:
		opts.WallClock = false
		return TrainModels(opts)
	}
}

// TrainOptions configures the Model Generator (§II-B).
type TrainOptions struct {
	// Noise is the relative measurement noise of the synthetic testbed
	// (default 0.02). Ignored when WallClock is set.
	Noise float64
	// Seed drives measurement noise and symbolic-regression randomness.
	Seed int64
	// WallClock benchmarks by actually executing and timing the kernel
	// bodies instead of using the deterministic synthetic testbed.
	WallClock bool
	// Fast shrinks the symbolic-regression search; fine for smoke tests,
	// not for accuracy experiments.
	Fast bool
}

// Models is a set of fitted per-kernel performance models.
type Models struct {
	inner kernels.Models
}

// TrainModels runs the full Model Generator pipeline: benchmark every
// kernel across the default parameter sweep and fit a model per kernel —
// linear regression where a single parameter dominates, symbolic regression
// for multi-parameter kernels (§II-B).
func TrainModels(opts TrainOptions) (Models, error) {
	var ms kernels.Measurer
	if opts.WallClock {
		ms = &kernels.WallClock{}
	} else {
		noise := opts.Noise
		if noise == 0 {
			noise = 0.02
		}
		seed := opts.Seed
		if seed == 0 {
			seed = 20210517
		}
		ms = kernels.NewSynthetic(noise, seed)
	}
	inner, err := kernels.Train(ms, kernels.TrainOptions{Seed: opts.Seed, Fast: opts.Fast})
	if err != nil {
		return Models{}, fmt.Errorf("picpredict: %w", err)
	}
	return Models{inner: inner}, nil
}

// AppTrainOptions configures instrumented-application model training.
type AppTrainOptions struct {
	// Np, N, and Filter define the benchmark sweep (defaults cover a
	// small representative grid). Filter is in element widths.
	Np     []int
	N      []int
	Filter []float64
	// Seed drives particle placement and symbolic-regression randomness.
	Seed int64
	// Fast shrinks the symbolic-regression search.
	Fast bool
}

// TrainModelsFromApp runs the Model Generator against the *instrumented
// application* (§II-B: "we instrument the source code and benchmark key
// computation kernels"): the real PIC solver executes with per-phase
// timing across the sweep, and models are fitted to the measured wall-clock
// times with the workload parameters as actually realised. Results are
// machine-dependent (they model this host), unlike the deterministic
// synthetic testbed of TrainModels.
func TrainModelsFromApp(opts AppTrainOptions) (Models, error) {
	samples, err := kernels.AppSamples(kernels.AppBenchConfig{
		Np:     opts.Np,
		N:      opts.N,
		Filter: opts.Filter,
		Seed:   opts.Seed,
	})
	if err != nil {
		return Models{}, fmt.Errorf("picpredict: %w", err)
	}
	inner, err := kernels.TrainFromSamples(samples, kernels.TrainOptions{Seed: opts.Seed, Fast: opts.Fast})
	if err != nil {
		return Models{}, fmt.Errorf("picpredict: %w", err)
	}
	return Models{inner: inner}, nil
}

// KernelNames lists the modelled kernels in solver-loop order.
func KernelNames() []string {
	names := make([]string, 0, 5)
	for _, k := range kernels.All() {
		names = append(names, k.Name)
	}
	return names
}

// Formulas renders every fitted model as a closed-form expression, sorted
// by kernel name.
func (m Models) Formulas() []string {
	out := make([]string, 0, len(m.inner))
	for name, model := range m.inner {
		out = append(out, name+" = "+model.String())
	}
	sort.Strings(out)
	return out
}

// Predict evaluates one kernel model at a workload point: np real and ngp
// ghost particles, nel elements per rank, grid resolution n, and the filter
// size in element widths.
func (m Models) Predict(kernel string, np, ngp, nel, n, filter float64) (float64, error) {
	model, ok := m.inner[kernel]
	if !ok {
		return 0, fmt.Errorf("picpredict: no model for kernel %q", kernel)
	}
	w := kernels.Workload{Np: np, Ngp: ngp, Nel: nel, N: n, Filter: filter}
	v, err := model.Predict(w.Features())
	if err != nil {
		return 0, fmt.Errorf("picpredict: %w", err)
	}
	return v, nil
}

// ValidateAgainstTruth computes each model's MAPE against the noiseless
// kernel cost laws on a validation grid distinct from the training sweep —
// a quick self-check that training converged.
func (m Models) ValidateAgainstTruth() (map[string]float64, error) {
	valid := kernels.Sweep{
		Np:     []float64{75, 700, 9000, 40000},
		Ngp:    []float64{25, 600, 2500},
		N:      []float64{4, 6, 8},
		Filter: []float64{0.8, 2.5, 4},
	}
	out := make(map[string]float64, len(m.inner))
	for _, k := range kernels.All() {
		model, ok := m.inner[k.Name]
		if !ok {
			return nil, fmt.Errorf("picpredict: no model for kernel %q", k.Name)
		}
		samples := kernels.Generate(k, exactMeasurer{}, valid)
		var x [][]float64
		var y []float64
		for _, s := range samples {
			x = append(x, s.W.Features())
			y = append(y, s.Time)
		}
		mape, err := perfmodel.EvalMAPE(model, x, y)
		if err != nil {
			return nil, fmt.Errorf("picpredict: validating %s: %w", k.Name, err)
		}
		out[k.Name] = mape
	}
	return out, nil
}

// exactMeasurer reports the noiseless true cost.
type exactMeasurer struct{}

func (exactMeasurer) Measure(k kernels.Kernel, w kernels.Workload) float64 { return k.TrueCost(w) }
