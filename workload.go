package picpredict

import (
	"bufio"
	"context"
	"fmt"
	"io"

	"picpredict/internal/core"
	"picpredict/internal/metrics"
	"picpredict/internal/obs"
	"picpredict/internal/pipeline"
	"picpredict/internal/sparse"
)

// MappingKind names a particle mapping algorithm.
type MappingKind string

const (
	// MappingElement is element-based mapping (§III-B): a particle lives
	// with the processor that owns its spectral element.
	MappingElement MappingKind = "element"
	// MappingBin is bin-based mapping (§III-C): the particle domain is
	// recursively cut into bins distributed across processors.
	MappingBin MappingKind = "bin"
	// MappingHilbert orders particles along the Hilbert curve of their
	// elements and splits the order into equal chunks (ref [10]).
	MappingHilbert MappingKind = "hilbert"
	// MappingWeighted distributes elements so every processor carries a
	// similar combined grid+particle load, repartitioning lazily when a
	// processor overloads (Zhai et al., ref [11]).
	MappingWeighted MappingKind = "weighted"
	// MappingOhHelp keeps element-based primary ownership but exports the
	// excess of overloaded processors to underloaded helpers (OhHelp,
	// ref [16]).
	MappingOhHelp MappingKind = "ohhelp"
)

// WorkloadOptions configures the Dynamic Workload Generator — the paper's
// configuration file (§II-A).
type WorkloadOptions struct {
	// Ranks is the processor count R to generate workload for.
	Ranks int
	// Mapping selects the particle mapping algorithm.
	Mapping MappingKind
	// FilterRadius is the projection filter size (absolute length). For
	// bin mapping it doubles as the threshold bin size; a positive value
	// also enables ghost-particle workload generation.
	FilterRadius float64
	// RelaxedBins removes the processor-count limit on bin splitting
	// (Fig 6's "relaxed" analysis mode). Only meaningful for MappingBin.
	RelaxedBins bool
	// MidpointSplit switches the bin planar cut from the median particle
	// to the spatial midpoint (ablation).
	MidpointSplit bool
	// Workers sets the generator's worker-goroutine count for the
	// per-frame matrix fills (0 or 1 runs serially). The workload is
	// identical for any value.
	Workers int
	// Rebalance selects a dynamic load-balancing policy for element
	// mapping ("", "none", "periodic:K", "threshold:F", "diffusion:F[/R]"
	// — see internal/rebalance). Empty/none keeps the static decomposition.
	// Any other value requires MappingElement and produces a workload with
	// migration matrices the simulator prices explicitly.
	Rebalance string
}

// Workload is the Dynamic Workload Generator output plus derived metrics:
// the Computation and Communication matrices for real and ghost particles.
type Workload struct {
	inner *core.Workload
	// binsPerFrame records the bin count of every frame when bin mapping
	// was used (empty otherwise).
	binsPerFrame []int
	opts         WorkloadOptions
}

// GenerateWorkload mimics the selected mapping algorithm over every trace
// frame and returns the synthesised workload. One trace serves any Ranks
// value — the core scalability-prediction property.
func (t *Trace) GenerateWorkload(opts WorkloadOptions) (*Workload, error) {
	return t.GenerateWorkloadContext(context.Background(), opts)
}

// GenerateWorkloadContext is GenerateWorkload under a context: the trace
// streams through the pipeline's workload-builder stage frame by frame, and
// cancelling ctx stops generation between frames. A registry attached to
// ctx with obs.With instruments the generator's per-frame fill times.
func (t *Trace) GenerateWorkloadContext(ctx context.Context, opts WorkloadOptions) (*Workload, error) {
	builder, err := pipeline.NewGeneratorBuilder(t.mapperSpec(opts), opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("picpredict: %w", err)
	}
	builder.SetObs(obs.From(ctx))
	src := &pipeline.SliceSource{Iterations: t.iterations, Positions: t.positions, Np: t.np}
	if err := pipeline.Stream(ctx, src, builder); err != nil {
		return nil, fmt.Errorf("picpredict: %w", err)
	}
	inner, err := builder.Finish()
	if err != nil {
		return nil, fmt.Errorf("picpredict: %w", err)
	}
	return &Workload{inner: inner, binsPerFrame: builder.BinsPerFrame, opts: opts}, nil
}

// mapperSpec translates facade options plus this trace's mesh metadata into
// the pipeline's mapper description.
func (t *Trace) mapperSpec(opts WorkloadOptions) pipeline.MapperSpec {
	return pipeline.MapperSpec{
		Kind:          string(opts.Mapping),
		Ranks:         opts.Ranks,
		FilterRadius:  opts.FilterRadius,
		RelaxedBins:   opts.RelaxedBins,
		MidpointSplit: opts.MidpointSplit,
		Rebalance:     opts.Rebalance,
		Domain:        t.domain,
		Elements:      t.mesh.elements,
		N:             t.mesh.n,
	}
}

// Options returns the generator options this workload was produced with
// (zero value for workloads loaded from a file).
func (w *Workload) Options() WorkloadOptions { return w.opts }

// Ranks returns the processor count the workload was generated for.
func (w *Workload) Ranks() int { return w.inner.Ranks }

// Frames returns the number of sampling intervals T.
func (w *Workload) Frames() int { return w.inner.RealComp.Frames() }

// Iterations returns the application iteration of every interval.
func (w *Workload) Iterations() []int { return w.inner.RealComp.Iterations() }

// At returns the real-particle count of rank r at interval k —
// P_comp[r][k].
func (w *Workload) At(r, k int) int64 { return w.inner.RealComp.At(r, k) }

// GhostAt returns the ghost-particle count of rank r at interval k, or 0
// when ghosts were disabled.
func (w *Workload) GhostAt(r, k int) int64 {
	if w.inner.GhostComp == nil {
		return 0
	}
	return w.inner.GhostComp.At(r, k)
}

// Peak returns the maximum particles-per-processor over the whole run (the
// y-axis of Figs 5 and 8).
func (w *Workload) Peak() int64 { return w.inner.RealComp.Peak() }

// PeakPerFrame returns the per-interval maximum particles per processor —
// the Fig 5 series.
func (w *Workload) PeakPerFrame() []int64 { return w.inner.RealComp.PeakPerFrame() }

// GhostPeak returns the maximum ghost particles per processor.
func (w *Workload) GhostPeak() int64 {
	if w.inner.GhostComp == nil {
		return 0
	}
	return w.inner.GhostComp.Peak()
}

// TotalGhosts returns the total number of ghost particles materialised per
// interval (Fig 10b's driver).
func (w *Workload) TotalGhosts() []int64 {
	if w.inner.GhostComp == nil {
		return nil
	}
	return w.inner.GhostComp.TotalPerFrame()
}

// NonZeroRanksPerFrame returns, per interval, how many ranks hold at least
// one particle (Fig 1b).
func (w *Workload) NonZeroRanksPerFrame() []int { return w.inner.RealComp.NonZeroRanksPerFrame() }

// Utilization is the paper's Resource Utilization metric (§II-A, Fig 9).
type Utilization struct {
	// Mean is the run-average fraction of ranks with ≥1 particle.
	Mean float64
	// Ever is the fraction of ranks that held a particle at any point.
	Ever float64
}

// Utilization computes the RU metrics of the real-particle workload.
func (w *Workload) Utilization() Utilization {
	u := metrics.Utilization(w.inner.RealComp)
	return Utilization{Mean: u.Mean, Ever: u.Ever}
}

// Imbalance returns the worst-interval load-imbalance factor max/mean.
func (w *Workload) Imbalance() float64 { return metrics.Imbalance(w.inner.RealComp) }

// LoadDistribution summarises the per-rank load spread at the busiest
// interval: percentiles, mean, and the Gini coefficient (0 = perfectly
// balanced, →1 = a handful of processors carry everything).
type LoadDistribution struct {
	Frame                   int
	Min, P50, P90, P99, Max int64
	Mean                    float64
	Gini                    float64
}

// Distribution computes the busiest-interval load distribution.
func (w *Workload) Distribution() (LoadDistribution, error) {
	d, err := metrics.LoadDistribution(w.inner.RealComp)
	if err != nil {
		return LoadDistribution{}, fmt.Errorf("picpredict: %w", err)
	}
	return LoadDistribution{
		Frame: d.Frame, Min: d.Min, P50: d.P50, P90: d.P90, P99: d.P99, Max: d.Max,
		Mean: d.Mean, Gini: d.Gini,
	}, nil
}

// BinsPerFrame returns the bin count of every interval when bin mapping
// was used (nil otherwise) — the Fig 6 series.
func (w *Workload) BinsPerFrame() []int { return w.binsPerFrame }

// MaxBins returns the largest bin count across the run; with RelaxedBins it
// is the paper's upper limit on useful processor count (Fig 6).
func (w *Workload) MaxBins() int {
	m := 0
	for _, b := range w.binsPerFrame {
		if b > m {
			m = b
		}
	}
	return m
}

// MigrationsPerFrame returns, per interval, the total number of particles
// that moved between ranks since the previous interval.
func (w *Workload) MigrationsPerFrame() []int64 { return w.inner.RealComm.TotalPerFrame() }

// CommEntry is one non-zero communication-matrix element.
type CommEntry struct {
	Src, Dst int
	Count    int64
}

// CommAt returns the non-zero real-particle communication entries of
// interval k (movements between intervals k−1 and k).
func (w *Workload) CommAt(k int) []CommEntry {
	es := w.inner.RealComm.At(k).Entries()
	out := make([]CommEntry, len(es))
	for i, e := range es {
		out[i] = CommEntry{Src: e.Src, Dst: e.Dst, Count: e.Count}
	}
	return out
}

// GhostCommAt returns the non-zero ghost-transfer entries of interval k
// (ghost copies sent home→ghost rank during the interval), or nil when
// ghost generation was disabled.
func (w *Workload) GhostCommAt(k int) []CommEntry {
	if w.inner.GhostComm == nil {
		return nil
	}
	es := w.inner.GhostComm.At(k).Entries()
	out := make([]CommEntry, len(es))
	for i, e := range es {
		out[i] = CommEntry{Src: e.Src, Dst: e.Dst, Count: e.Count}
	}
	return out
}

// HasMigration reports whether the workload carries rebalance-migration
// matrices (generated under a rebalance policy, or loaded from a file that
// stored them).
func (w *Workload) HasMigration() bool { return w.inner.MigElemComm != nil }

// MigrationEpochs returns how many intervals performed a rebalance (had at
// least one element change owners); 0 for static mappings.
func (w *Workload) MigrationEpochs() int {
	if w.inner.MigElemComm == nil {
		return 0
	}
	epochs := 0
	for _, n := range w.inner.MigElemComm.TotalPerFrame() {
		if n > 0 {
			epochs++
		}
	}
	return epochs
}

// MigrationTotals returns the total elements and resident particles that
// changed owners across all rebalance epochs (0, 0 for static mappings).
func (w *Workload) MigrationTotals() (elements, particles int64) {
	if w.inner.MigElemComm == nil {
		return 0, 0
	}
	for _, n := range w.inner.MigElemComm.TotalPerFrame() {
		elements += n
	}
	for _, n := range w.inner.MigPartComm.TotalPerFrame() {
		particles += n
	}
	return elements, particles
}

// MigrationCommAt returns the non-zero rebalance-transfer entries of
// interval k — elements (and the particles resident in them) moving from old
// to new owners — or nil, nil when the workload has no migration matrices.
func (w *Workload) MigrationCommAt(k int) (elements, particles []CommEntry) {
	if w.inner.MigElemComm == nil {
		return nil, nil
	}
	toEntries := func(es []sparse.Entry) []CommEntry {
		out := make([]CommEntry, len(es))
		for i, e := range es {
			out[i] = CommEntry{Src: e.Src, Dst: e.Dst, Count: e.Count}
		}
		return out
	}
	return toEntries(w.inner.MigElemComm.At(k).Entries()), toEntries(w.inner.MigPartComm.At(k).Entries())
}

// WriteHeatmapCSV emits the real-particle computation matrix as CSV (one
// row per rank) — the Fig 1a heat-map data.
func (w *Workload) WriteHeatmapCSV(out io.Writer) error {
	return metrics.WriteHeatmapCSV(out, w.inner.RealComp)
}

// WriteCommCSV emits the real-particle communication matrix as CSV with
// columns interval,iteration,src,dst,count — one row per non-zero entry of
// P_comm, the per-interval particle transfers between processor pairs.
func (w *Workload) WriteCommCSV(out io.Writer) error {
	bw := bufio.NewWriter(out)
	if _, err := fmt.Fprintln(bw, "interval,iteration,src,dst,count"); err != nil {
		return err
	}
	its := w.Iterations()
	for k := 0; k < w.Frames(); k++ {
		for _, e := range w.inner.RealComm.At(k).Entries() {
			if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d\n", k, its[k], e.Src, e.Dst, e.Count); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RenderHeatmap draws an ASCII heat map of the computation matrix,
// down-sampled to at most rows×cols cells.
func (w *Workload) RenderHeatmap(out io.Writer, rows, cols int) error {
	return metrics.RenderHeatmapASCII(out, w.inner.RealComp, rows, cols)
}

// Write serialises the workload matrices to w in a compact binary format;
// ReadWorkload loads them back. Saving a generated workload lets the
// (expensive) simulation and accuracy studies replay it without re-running
// the generator.
func (w *Workload) Write(out io.Writer) error {
	if err := w.inner.Write(out); err != nil {
		return fmt.Errorf("picpredict: %w", err)
	}
	return nil
}

// ReadWorkload parses a workload saved with Workload.Write. Bin-count
// bookkeeping (BinsPerFrame/MaxBins) is not serialised and reads back
// empty. Any damage fails the read; use ReadWorkloadSalvaged to keep the
// intact prefix of a torn file instead.
func ReadWorkload(r io.Reader) (*Workload, error) {
	inner, err := core.ReadWorkload(r)
	if err != nil {
		return nil, fmt.Errorf("picpredict: %w", err)
	}
	return &Workload{inner: inner}, nil
}

// ReadWorkloadSalvaged parses a workload, tolerating a damaged tail: the
// intact leading intervals of a torn or corrupt file are returned together
// with a non-nil *Salvage describing the damage (nil when the file is
// whole). The error is non-nil only when nothing usable could be read.
func ReadWorkloadSalvaged(r io.Reader) (*Workload, *Salvage, error) {
	inner, damage, err := core.ReadWorkloadSalvaged(r)
	if err != nil {
		return nil, nil, fmt.Errorf("picpredict: %w", err)
	}
	out := &Workload{inner: inner}
	if damage != nil {
		return out, &Salvage{Recovered: inner.RealComp.Frames(), Damage: fmt.Errorf("picpredict: %w", damage)}, nil
	}
	return out, nil, nil
}

// internalWorkload exposes the core workload to sibling facade files.
func (w *Workload) internalWorkload() *core.Workload { return w.inner }
