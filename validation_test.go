package picpredict

import (
	"bytes"
	"testing"
)

// TestGeneratorMatchesInAppWorkload reproduces the paper's §IV-B validation
// ("we also have validated our predictions ... by comparing the output of
// our Dynamic Workload Generator with actual workload, obtained by running
// the Hele-Shaw simulation"): the workload generated from the float32 trace
// *file* must match the workload computed from the application's in-memory
// float64 positions. The only divergence channel is trace quantisation, so
// any mismatch beyond a count or two would indicate the generator is not
// mimicking the mapping algorithm faithfully.
func TestGeneratorMatchesInAppWorkload(t *testing.T) {
	spec := HeleShaw().
		WithParticles(2000).
		WithElements(32, 32, 1).
		WithSteps(300).
		WithSampleEvery(100).
		WithBurst(0.004, 0)

	// "In-app" workload: straight from the run's full-precision positions.
	inApp, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Trace-file workload: positions round-tripped through float32.
	var buf bytes.Buffer
	if err := inApp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	fromFile, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromFile.WithMesh(32, 32, 1, spec.GridN())

	for _, opts := range []WorkloadOptions{
		{Ranks: 64, Mapping: MappingBin, FilterRadius: spec.FilterRadius()},
		{Ranks: 64, Mapping: MappingElement, FilterRadius: spec.FilterRadius()},
		{Ranks: 128, Mapping: MappingBin, FilterRadius: spec.FilterRadius()},
	} {
		want, err := inApp.GenerateWorkload(opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fromFile.GenerateWorkload(opts)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < want.Frames(); k++ {
			for r := 0; r < want.Ranks(); r++ {
				a, b := want.At(r, k), got.At(r, k)
				d := a - b
				if d < 0 {
					d = -d
				}
				// float32 quantisation can flip a particle across a bin or
				// element boundary; allow a sliver, nothing more.
				if d > 2 {
					t.Fatalf("%s R=%d frame %d rank %d: in-app %d vs trace-file %d",
						opts.Mapping, opts.Ranks, k, r, a, b)
				}
			}
		}
		if want.Peak() != got.Peak() {
			dp := want.Peak() - got.Peak()
			if dp < -2 || dp > 2 {
				t.Errorf("%s R=%d: peak %d vs %d", opts.Mapping, opts.Ranks, want.Peak(), got.Peak())
			}
		}
	}
}
