module picpredict

go 1.22
