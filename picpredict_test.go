package picpredict

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// tinyScenario is a fast Hele-Shaw variant for facade tests.
func tinyScenario() Scenario {
	return HeleShaw().
		WithParticles(400).
		WithElements(16, 16, 1).
		WithSteps(120).
		WithSampleEvery(40).
		WithFilterRadius(0.02).
		WithBurst(0.004, 0)
}

var (
	tinyTraceOnce sync.Once
	tinyTraceVal  *Trace
	tinyTraceErr  error
)

func tinyTrace(t *testing.T) *Trace {
	t.Helper()
	tinyTraceOnce.Do(func() { tinyTraceVal, tinyTraceErr = tinyScenario().Run() })
	if tinyTraceErr != nil {
		t.Fatal(tinyTraceErr)
	}
	return tinyTraceVal
}

func TestScenarioAccessors(t *testing.T) {
	s := tinyScenario()
	if s.Name() != "hele-shaw" || s.NumParticles() != 400 || s.NumElements() != 256 {
		t.Errorf("accessors: %s %d %d", s.Name(), s.NumParticles(), s.NumElements())
	}
	if s.Steps() != 120 || s.SampleEvery() != 40 {
		t.Errorf("steps/sample: %d/%d", s.Steps(), s.SampleEvery())
	}
	if s.FilterRadius() != 0.02 {
		t.Errorf("filter: %v", s.FilterRadius())
	}
	// Filter in element widths: 0.02 / (1/16) = 0.32.
	if f := s.FilterInElements(); f < 0.31 || f > 0.33 {
		t.Errorf("FilterInElements = %v", f)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	if err := s.WithParticles(0).Validate(); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestScenarioVariants(t *testing.T) {
	for _, s := range []Scenario{HeleShaw(), HeleShawFull(), UniformScenario(), GaussianScenario()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
	if HeleShawFull().NumParticles() != 599257 {
		t.Errorf("full particles = %d", HeleShawFull().NumParticles())
	}
	if HeleShawFull().NumElements() != 216225 {
		t.Errorf("full elements = %d", HeleShawFull().NumElements())
	}
}

func TestTraceRoundTripThroughFile(t *testing.T) {
	tr := tinyTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumParticles() != tr.NumParticles() || back.Frames() != tr.Frames() {
		t.Fatalf("round trip: %d/%d vs %d/%d", back.NumParticles(), back.Frames(), tr.NumParticles(), tr.Frames())
	}
	// A file-loaded trace lacks mesh info: element mapping must fail
	// helpfully, then work after WithMesh.
	if _, err := back.GenerateWorkload(WorkloadOptions{Ranks: 4, Mapping: MappingElement}); err == nil {
		t.Error("element mapping without mesh accepted")
	}
	back.WithMesh(16, 16, 1, 4)
	if _, err := back.GenerateWorkload(WorkloadOptions{Ranks: 4, Mapping: MappingElement}); err != nil {
		t.Errorf("element mapping with mesh failed: %v", err)
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("garbage data here")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestGenerateWorkloadElementVsBin(t *testing.T) {
	tr := tinyTrace(t)
	elem, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 64, Mapping: MappingElement, FilterRadius: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 64, Mapping: MappingBin, FilterRadius: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// The central claim (Fig 8): bin mapping slashes peak workload for a
	// clustered bed.
	if bin.Peak() >= elem.Peak() {
		t.Errorf("bin peak %d not below element peak %d", bin.Peak(), elem.Peak())
	}
	// And lifts utilization (Fig 9).
	ue, ub := elem.Utilization(), bin.Utilization()
	if ub.Mean <= ue.Mean {
		t.Errorf("bin RU %v not above element RU %v", ub.Mean, ue.Mean)
	}
	// Bin bookkeeping present only for bin mapping.
	if len(bin.BinsPerFrame()) != bin.Frames() {
		t.Errorf("BinsPerFrame len %d, frames %d", len(bin.BinsPerFrame()), bin.Frames())
	}
	if elem.BinsPerFrame() != nil {
		t.Error("element workload has bin counts")
	}
}

func TestGenerateWorkloadHilbert(t *testing.T) {
	tr := tinyTrace(t)
	wl, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 8, Mapping: MappingHilbert})
	if err != nil {
		t.Fatal(err)
	}
	if wl.Ranks() != 8 || wl.Frames() != tr.Frames() {
		t.Fatalf("hilbert workload: %d ranks %d frames", wl.Ranks(), wl.Frames())
	}
	// Hilbert mapping balances counts exactly (equal chunks).
	if wl.Imbalance() > 1.2 {
		t.Errorf("hilbert imbalance %v", wl.Imbalance())
	}
}

func TestGenerateWorkloadValidation(t *testing.T) {
	tr := tinyTrace(t)
	if _, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 0, Mapping: MappingBin}); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 4, Mapping: "nope"}); err == nil {
		t.Error("unknown mapping accepted")
	}
}

func TestWorkloadMatrixAccessors(t *testing.T) {
	tr := tinyTrace(t)
	wl, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 16, Mapping: MappingBin, FilterRadius: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Totals across ranks must equal N_p each frame.
	for k := 0; k < wl.Frames(); k++ {
		var tot int64
		for r := 0; r < wl.Ranks(); r++ {
			tot += wl.At(r, k)
		}
		if tot != int64(tr.NumParticles()) {
			t.Fatalf("frame %d total %d != Np %d", k, tot, tr.NumParticles())
		}
	}
	if len(wl.Iterations()) != wl.Frames() {
		t.Error("Iterations length mismatch")
	}
	if wl.Peak() <= 0 {
		t.Error("zero peak")
	}
	if got := len(wl.PeakPerFrame()); got != wl.Frames() {
		t.Errorf("PeakPerFrame len %d", got)
	}
	if wl.GhostPeak() <= 0 {
		t.Error("no ghosts with positive filter")
	}
	if len(wl.TotalGhosts()) != wl.Frames() {
		t.Error("TotalGhosts length mismatch")
	}
	if mig := wl.MigrationsPerFrame(); len(mig) != wl.Frames() || mig[0] != 0 {
		t.Errorf("migrations: %v", mig)
	}
	// Comm entries are self-consistent.
	var sum int64
	for _, e := range wl.CommAt(1) {
		if e.Src == e.Dst {
			t.Errorf("self comm %+v", e)
		}
		sum += e.Count
	}
	if sum != wl.MigrationsPerFrame()[1] {
		t.Errorf("CommAt(1) sum %d != migrations %d", sum, wl.MigrationsPerFrame()[1])
	}
}

func TestWorkloadHeatmapOutputs(t *testing.T) {
	tr := tinyTrace(t)
	wl, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 8, Mapping: MappingBin})
	if err != nil {
		t.Fatal(err)
	}
	var csv, art bytes.Buffer
	if err := wl.WriteHeatmapCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 9 { // header + 8 ranks
		t.Errorf("csv lines = %d", lines)
	}
	if err := wl.RenderHeatmap(&art, 8, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(art.String(), "peak") {
		t.Errorf("heatmap output: %q", art.String())
	}
}

func TestRelaxedBinsExceedRanks(t *testing.T) {
	tr := tinyTrace(t)
	relaxed, err := tr.GenerateWorkload(WorkloadOptions{
		Ranks: 2, Mapping: MappingBin, FilterRadius: 0.02, RelaxedBins: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.MaxBins() <= 2 {
		t.Errorf("relaxed MaxBins = %d, want > ranks", relaxed.MaxBins())
	}
	limited, err := tr.GenerateWorkload(WorkloadOptions{
		Ranks: 2, Mapping: MappingBin, FilterRadius: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if limited.MaxBins() > 2 {
		t.Errorf("limited MaxBins = %d", limited.MaxBins())
	}
}

func TestMidpointSplitOption(t *testing.T) {
	tr := tinyTrace(t)
	mid, err := tr.GenerateWorkload(WorkloadOptions{
		Ranks: 16, Mapping: MappingBin, MidpointSplit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	med, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 16, Mapping: MappingBin})
	if err != nil {
		t.Fatal(err)
	}
	// Median split balances at least as well as midpoint (ablation claim).
	if med.Imbalance() > mid.Imbalance()+1e-9 {
		t.Errorf("median imbalance %v worse than midpoint %v", med.Imbalance(), mid.Imbalance())
	}
}

func TestParticleBoundsGrow(t *testing.T) {
	tr := tinyTrace(t)
	first, last := tr.ParticleBounds(0), tr.ParticleBounds(tr.Frames()-1)
	w0 := first[1][0] - first[0][0]
	w1 := last[1][0] - last[0][0]
	if w1 <= w0 {
		t.Errorf("particle boundary did not expand: %v -> %v", w0, w1)
	}
}

func TestGenerateWorkloadWeighted(t *testing.T) {
	tr := tinyTrace(t)
	wl, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 8, Mapping: MappingWeighted})
	if err != nil {
		t.Fatal(err)
	}
	if wl.Ranks() != 8 || wl.Frames() != tr.Frames() {
		t.Fatalf("weighted workload: %d ranks %d frames", wl.Ranks(), wl.Frames())
	}
	// Both mappers are bounded below by the heaviest single element; the
	// weighted mapper must never be worse and must balance better overall.
	elem, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 8, Mapping: MappingElement})
	if err != nil {
		t.Fatal(err)
	}
	if wl.Peak() > elem.Peak() {
		t.Errorf("weighted peak %d above element peak %d", wl.Peak(), elem.Peak())
	}
	// At this tiny scale the single heaviest element bounds both mappers,
	// so require only no-worse balance here; the mapping package's tests
	// cover the strict improvement at realistic granularity.
	if wl.Imbalance() > elem.Imbalance()+1e-9 {
		t.Errorf("weighted imbalance %.1f above element %.1f", wl.Imbalance(), elem.Imbalance())
	}
}

func TestTraceExtrapolate(t *testing.T) {
	tr := tinyTrace(t)
	big, err := tr.Extrapolate(4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if big.NumParticles() != 4*tr.NumParticles() {
		t.Fatalf("extrapolated Np = %d", big.NumParticles())
	}
	if big.Frames() != tr.Frames() || big.SampleEvery() != tr.SampleEvery() {
		t.Errorf("metadata changed: %d frames, every %d", big.Frames(), big.SampleEvery())
	}
	// Workload distribution scales with the population: peak ≈ 4× at the
	// same rank count, same mapping.
	opts := WorkloadOptions{Ranks: 16, Mapping: MappingBin, FilterRadius: 0.02}
	small, err := tr.GenerateWorkload(opts)
	if err != nil {
		t.Fatal(err)
	}
	large, err := big.GenerateWorkload(opts)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(large.Peak()) / float64(small.Peak())
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("extrapolated peak ratio = %.2f, want ≈4", ratio)
	}
	// The extrapolated trace keeps the mesh, so element mapping works.
	if _, err := big.GenerateWorkload(WorkloadOptions{Ranks: 8, Mapping: MappingElement}); err != nil {
		t.Errorf("element mapping on extrapolated trace: %v", err)
	}
	if _, err := tr.Extrapolate(0, 1); err == nil {
		t.Error("factor 0 accepted")
	}
}

func TestWriteCommCSV(t *testing.T) {
	tr := tinyTrace(t)
	wl, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 16, Mapping: MappingBin})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wl.WriteCommCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "interval,iteration,src,dst,count" {
		t.Fatalf("header = %q", lines[0])
	}
	// Row count equals total non-zero comm entries.
	want := 0
	for k := 0; k < wl.Frames(); k++ {
		want += len(wl.CommAt(k))
	}
	if len(lines)-1 != want {
		t.Errorf("csv rows = %d, want %d", len(lines)-1, want)
	}
}

func TestScenarioWriteTraceAndOptions(t *testing.T) {
	s := tinyScenario().WithSeed(777).WithCollisions(1e-4)
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumParticles() != s.NumParticles() {
		t.Errorf("trace Np = %d", tr.NumParticles())
	}
	// Domain and iterations accessors.
	d := tr.Domain()
	if d[1][0] <= d[0][0] {
		t.Errorf("domain = %v", d)
	}
	if len(tr.Iterations()) != tr.Frames() {
		t.Error("Iterations length mismatch")
	}
	// Seed changes the run deterministically.
	a, err := tinyScenario().WithSeed(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinyScenario().WithSeed(2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.ParticleBounds(0) == b.ParticleBounds(0) {
		// Bounds can coincide (lattice bed); check a position instead.
		if a.frame(0)[0] == b.frame(0)[0] {
			t.Error("different seeds produced identical particles")
		}
	}
	if e := s.Elements(); e != [3]int{16, 16, 1} {
		t.Errorf("Elements = %v", e)
	}
}

func TestShockTubeScenarioFacade(t *testing.T) {
	s := ShockTubeScenario().
		WithParticles(300).
		WithElements(32, 8, 1).
		WithSteps(80).
		WithSampleEvery(40)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Frames() != 3 {
		t.Errorf("frames = %d", tr.Frames())
	}
	// Element mapping works straight off the scenario-built trace.
	wl, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 8, Mapping: MappingElement})
	if err != nil {
		t.Fatal(err)
	}
	if wl.Peak() <= 0 {
		t.Error("empty workload")
	}
	// No ghosts requested: GhostAt is zero, TotalGhosts nil.
	if wl.GhostAt(0, 0) != 0 || wl.TotalGhosts() != nil {
		t.Error("ghost data without filter")
	}
	nz := wl.NonZeroRanksPerFrame()
	if len(nz) != wl.Frames() || nz[0] <= 0 {
		t.Errorf("NonZeroRanksPerFrame = %v", nz)
	}
}

func TestWriteCompressedRoundTrip(t *testing.T) {
	tr := tinyTrace(t)
	var raw, packed bytes.Buffer
	if err := tr.Write(&raw); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCompressed(&packed); err != nil {
		t.Fatal(err)
	}
	if packed.Len() >= raw.Len() {
		t.Errorf("compressed %d bytes not smaller than raw %d", packed.Len(), raw.Len())
	}
	back, err := ReadTrace(&packed)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumParticles() != tr.NumParticles() || back.Frames() != tr.Frames() {
		t.Fatalf("compressed round trip: %d/%d", back.NumParticles(), back.Frames())
	}
}

func TestWithWorkersTraceIdentical(t *testing.T) {
	serial, err := tinyScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := tinyScenario().WithWorkers(4).Run()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < serial.Frames(); k++ {
		a, b := serial.frame(k), parallel.frame(k)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frame %d particle %d differs across worker counts", k, i)
			}
		}
	}
}

func TestTraceDownsample(t *testing.T) {
	tr := tinyTrace(t) // 4 frames at every-40 sampling
	down, err := tr.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if down.Frames() != 2 || down.SampleEvery() != 80 {
		t.Fatalf("downsampled: %d frames, every %d", down.Frames(), down.SampleEvery())
	}
	if down.Iterations()[0] != tr.Iterations()[0] || down.Iterations()[1] != tr.Iterations()[2] {
		t.Errorf("kept iterations %v from %v", down.Iterations(), tr.Iterations())
	}
	// Workload generation still works; peak from the coarser trace equals
	// the peak computed over the kept frames of the fine trace.
	opts := WorkloadOptions{Ranks: 8, Mapping: MappingBin}
	fine, err := tr.GenerateWorkload(opts)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := down.GenerateWorkload(opts)
	if err != nil {
		t.Fatal(err)
	}
	finePeaks := fine.PeakPerFrame()
	coarsePeaks := coarse.PeakPerFrame()
	for i, k := range []int{0, 2} {
		if coarsePeaks[i] != finePeaks[k] {
			t.Errorf("coarse peak %d = %d, fine frame %d = %d", i, coarsePeaks[i], k, finePeaks[k])
		}
	}
	if _, err := tr.Downsample(0); err == nil {
		t.Error("factor 0 accepted")
	}
	// Mesh metadata survives: element mapping still possible.
	if _, err := down.GenerateWorkload(WorkloadOptions{Ranks: 4, Mapping: MappingElement}); err != nil {
		t.Errorf("element mapping after downsample: %v", err)
	}
}

func TestGhostCommAt(t *testing.T) {
	tr := tinyTrace(t)
	wl, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 16, Mapping: MappingBin, FilterRadius: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Ghost comm totals per frame match GhostAt sums.
	for k := 0; k < wl.Frames(); k++ {
		var commTotal, compTotal int64
		for _, e := range wl.GhostCommAt(k) {
			commTotal += e.Count
		}
		for r := 0; r < wl.Ranks(); r++ {
			compTotal += wl.GhostAt(r, k)
		}
		if commTotal != compTotal {
			t.Fatalf("frame %d: ghost comm %d != ghost comp %d", k, commTotal, compTotal)
		}
	}
	// Disabled ghosts: nil.
	plain, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 16, Mapping: MappingBin})
	if err != nil {
		t.Fatal(err)
	}
	if plain.GhostCommAt(0) != nil {
		t.Error("ghost comm without filter")
	}
}

func TestWorkloadWriteReadFacade(t *testing.T) {
	tr := tinyTrace(t)
	wl, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 16, Mapping: MappingBin, FilterRadius: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Peak() != wl.Peak() || back.Ranks() != wl.Ranks() || back.Frames() != wl.Frames() {
		t.Fatalf("round trip: peak %d/%d ranks %d/%d", back.Peak(), wl.Peak(), back.Ranks(), wl.Ranks())
	}
	if back.GhostPeak() != wl.GhostPeak() {
		t.Errorf("ghost peak %d vs %d", back.GhostPeak(), wl.GhostPeak())
	}
	// A loaded workload simulates identically.
	p, err := NewPlatform(sharedModels(t), PlatformOptions{TotalElements: 256, N: 4, Filter: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.SimulateBSP(wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SimulateBSP(back)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Errorf("simulation differs after round trip: %v vs %v", a.Total, b.Total)
	}
	if _, err := ReadWorkload(strings.NewReader("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestMachinePresets(t *testing.T) {
	for _, name := range []string{"quartz", "vulcan", "titan"} {
		m, err := MachineByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name != name || m.LatencySec <= 0 || m.BandwidthBps <= 0 || m.BytesPerParticle <= 0 {
			t.Errorf("%s preset: %+v", name, m)
		}
	}
	if _, err := MachineByName("summit"); err == nil {
		t.Error("unknown machine accepted")
	}
	if VulcanMachine().BandwidthBps >= QuartzMachine().BandwidthBps {
		t.Error("Vulcan BG/Q links should be slower than OmniPath")
	}
	if TitanMachine().Name != "titan" {
		t.Error("titan preset wrong")
	}
}

func TestGenerateWorkloadOhHelp(t *testing.T) {
	tr := tinyTrace(t)
	wl, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 8, Mapping: MappingOhHelp})
	if err != nil {
		t.Fatal(err)
	}
	elem, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 8, Mapping: MappingElement})
	if err != nil {
		t.Fatal(err)
	}
	// Helpers cap the peak near the average for the clustered bed.
	if wl.Peak() >= elem.Peak() {
		t.Errorf("ohhelp peak %d not below element peak %d", wl.Peak(), elem.Peak())
	}
	if wl.Imbalance() >= elem.Imbalance() {
		t.Errorf("ohhelp imbalance %.1f not below element %.1f", wl.Imbalance(), elem.Imbalance())
	}
}

func TestWorkloadDistribution(t *testing.T) {
	tr := tinyTrace(t)
	elem, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 32, Mapping: MappingElement})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := tr.GenerateWorkload(WorkloadOptions{Ranks: 32, Mapping: MappingBin})
	if err != nil {
		t.Fatal(err)
	}
	de, err := elem.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	db, err := bin.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	// Clustered bed: element mapping is far more unequal than bin mapping.
	if de.Gini <= db.Gini {
		t.Errorf("element Gini %.2f not above bin Gini %.2f", de.Gini, db.Gini)
	}
	if de.Max < de.P99 || de.P99 < de.P50 || de.P50 < de.Min {
		t.Errorf("percentiles unordered: %+v", de)
	}
}

func TestWorkloadOptionsAccessor(t *testing.T) {
	tr := tinyTrace(t)
	opts := WorkloadOptions{Ranks: 8, Mapping: MappingBin, FilterRadius: 0.02}
	wl, err := tr.GenerateWorkload(opts)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Options() != opts {
		t.Errorf("Options = %+v, want %+v", wl.Options(), opts)
	}
}
