package picpredict

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fusedTestScenario is small enough for integration tests.
func fusedTestScenario() Scenario {
	return HeleShaw().WithParticles(400).WithSteps(60).WithSampleEvery(10)
}

// fusedTestOptions mirrors the predict cmd's defaults at test scale.
func fusedTestOptions(ranks ...int) FusedOptions {
	return FusedOptions{
		Ranks:         ranks,
		Train:         TrainOptions{Seed: 1, Fast: true},
		TotalElements: 16384,
		GridN:         4,
	}
}

// TestFusedMatchesFileFlow is the parity acceptance test: the fused
// single-process pipeline must report totals bit-identical to the
// three-binary flow (picgen trace file → predict) on the quickstart
// Hele-Shaw configuration — with zero intermediate files.
func TestFusedMatchesFileFlow(t *testing.T) {
	sc := fusedTestScenario()
	ranksList := []int{8, 16}

	// File-at-rest flow: write the trace artefact, read it back, train,
	// generate workloads, predict.
	var buf bytes.Buffer
	if err := sc.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	models, err := TrainModels(TrainOptions{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	q := QuartzMachine()
	platform, err := NewPlatform(models, PlatformOptions{
		TotalElements: 16384, N: 4, Filter: 1, Machine: &q,
	})
	if err != nil {
		t.Fatal(err)
	}
	type fileResult struct {
		total, comp, comm float64
		accuracy          map[string]float64
	}
	fileResults := make([]fileResult, len(ranksList))
	for i, ranks := range ranksList {
		wl, err := tr.GenerateWorkload(WorkloadOptions{
			Ranks:        ranks,
			Mapping:      MappingBin,
			FilterRadius: sc.FilterRadius(),
		})
		if err != nil {
			t.Fatal(err)
		}
		pred, err := platform.SimulateBSP(wl)
		if err != nil {
			t.Fatal(err)
		}
		acc, err := platform.KernelAccuracy(wl, 0.105, int64(7+i))
		if err != nil {
			t.Fatal(err)
		}
		var comp, comm float64
		for k := range pred.Compute {
			comp += pred.Compute[k]
			comm += pred.Comm[k]
		}
		fileResults[i] = fileResult{total: pred.Total, comp: comp, comm: comm, accuracy: acc}
	}

	// Fused flow, run from an empty working directory so any intermediate
	// file would be caught.
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	res, err := RunFused(context.Background(), sc, fusedTestOptions(ranksList...))
	if err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("fused run left intermediate files behind: %v", names)
	}

	if res.Frames != tr.Frames() {
		t.Errorf("fused streamed %d frames, trace has %d", res.Frames, tr.Frames())
	}
	for i, ranks := range ranksList {
		pred := res.Predictions[i]
		var comp, comm float64
		for k := range pred.Compute {
			comp += pred.Compute[k]
			comm += pred.Comm[k]
		}
		want := fileResults[i]
		// Bit-identical, not approximately equal: the fused source quantises
		// positions through the trace format's float32 exactly like the file
		// round-trip.
		if pred.Total != want.total || comp != want.comp || comm != want.comm {
			t.Errorf("R=%d: fused total/comp/comm = %g/%g/%g, file flow %g/%g/%g",
				ranks, pred.Total, comp, comm, want.total, want.comp, want.comm)
		}
		if !reflect.DeepEqual(res.Accuracy[i], want.accuracy) {
			t.Errorf("R=%d: fused accuracy %v, file flow %v", ranks, res.Accuracy[i], want.accuracy)
		}
		if res.Workloads[i].Ranks() != ranks {
			t.Errorf("workload %d has R=%d, want %d", i, res.Workloads[i].Ranks(), ranks)
		}
	}
}

// TestFusedCancellationAndResume cancels a checkpointed fused run
// mid-flight, verifies a resumable checkpoint was written, resumes it, and
// checks the resumed result matches an uninterrupted fused run exactly —
// trace bytes included.
func TestFusedCancellationAndResume(t *testing.T) {
	sc := fusedTestScenario()
	dir := t.TempDir()

	// Reference: uninterrupted fused run with a trace artefact.
	refTrace := filepath.Join(dir, "ref.bin")
	refOpts := fusedTestOptions(8)
	refOpts.TraceOut = refTrace
	refOpts.CheckpointEvery = 25
	ref, err := RunFused(context.Background(), sc, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(refTrace + ".ckpt"); !os.IsNotExist(err) {
		t.Errorf("completed fused run left its checkpoint behind (stat err %v)", err)
	}
	refBytes, err := os.ReadFile(refTrace)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel a second run after its 4th frame.
	outTrace := filepath.Join(dir, "cancelled.bin")
	ctx, cancel := context.WithCancel(context.Background())
	opts := fusedTestOptions(8)
	opts.TraceOut = outTrace
	opts.CheckpointEvery = 25
	opts.afterFrame = func(frames int) {
		if frames == 4 {
			cancel()
		}
	}
	_, err = RunFused(ctx, sc, opts)
	if err == nil {
		t.Fatal("cancelled fused run returned nil")
	}
	if ctx.Err() == nil {
		t.Fatalf("fused run failed for a non-cancellation reason: %v", err)
	}
	if _, err := os.Stat(outTrace + ".ckpt"); err != nil {
		t.Fatalf("cancelled fused run left no checkpoint: %v", err)
	}

	// Resume. The replayed prefix plus the live remainder must reproduce
	// the uninterrupted run bit-for-bit.
	resumeOpts := fusedTestOptions(8)
	resumeOpts.TraceOut = outTrace
	resumeOpts.CheckpointEvery = 25
	resumeOpts.Resume = true
	res, err := RunFused(context.Background(), sc, resumeOpts)
	if err != nil {
		t.Fatalf("resuming cancelled fused run: %v", err)
	}
	gotBytes, err := os.ReadFile(outTrace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("resumed trace differs from uninterrupted run (%d vs %d bytes)", len(gotBytes), len(refBytes))
	}
	if res.Frames != ref.Frames {
		t.Errorf("resumed run streamed %d frames, reference %d", res.Frames, ref.Frames)
	}
	if res.Predictions[0].Total != ref.Predictions[0].Total {
		t.Errorf("resumed prediction %g, reference %g", res.Predictions[0].Total, ref.Predictions[0].Total)
	}
	if !reflect.DeepEqual(res.Accuracy[0], ref.Accuracy[0]) {
		t.Errorf("resumed accuracy %v, reference %v", res.Accuracy[0], ref.Accuracy[0])
	}
}

// BenchmarkFusedPipeline times the single-process fused flow: simulation →
// workload builders → BSP prediction, no files. Compare against
// BenchmarkFileBasedPipeline, the equivalent three-pass flow through a
// trace artefact on disk.
func BenchmarkFusedPipeline(b *testing.B) {
	sc := fusedTestScenario()
	for i := 0; i < b.N; i++ {
		if _, err := RunFused(context.Background(), sc, fusedTestOptions(16)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileBasedPipeline times the file-at-rest flow the standalone
// binaries implement: picgen writes the trace, predict reads it back,
// trains models, generates the workload, and simulates.
func BenchmarkFileBasedPipeline(b *testing.B) {
	sc := fusedTestScenario()
	dir := b.TempDir()
	path := filepath.Join(dir, "trace.bin")
	for i := 0; i < b.N; i++ {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := sc.WriteTrace(f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}

		rf, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := ReadTrace(rf)
		rf.Close()
		if err != nil {
			b.Fatal(err)
		}
		models, err := TrainModels(TrainOptions{Seed: 1, Fast: true})
		if err != nil {
			b.Fatal(err)
		}
		q := QuartzMachine()
		platform, err := NewPlatform(models, PlatformOptions{
			TotalElements: 16384, N: 4, Filter: 1, Machine: &q,
		})
		if err != nil {
			b.Fatal(err)
		}
		wl, err := tr.GenerateWorkload(WorkloadOptions{
			Ranks: 16, Mapping: MappingBin, FilterRadius: sc.FilterRadius(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := platform.SimulateBSP(wl); err != nil {
			b.Fatal(err)
		}
		if _, err := platform.KernelAccuracy(wl, 0.105, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFusedValidation covers the option-validation error paths.
func TestFusedValidation(t *testing.T) {
	sc := fusedTestScenario()
	if _, err := RunFused(context.Background(), sc, FusedOptions{}); err == nil {
		t.Error("RunFused with no ranks accepted")
	}
	opts := fusedTestOptions(8)
	opts.CheckpointEvery = 10 // checkpointing without TraceOut
	if _, err := RunFused(context.Background(), sc, opts); err == nil {
		t.Error("fused checkpointing without TraceOut accepted")
	}
}

// TestFusedWorkersMatchSerial checks the parallel generator path produces
// the same fused result as the serial one.
func TestFusedWorkersMatchSerial(t *testing.T) {
	sc := fusedTestScenario()
	serial, err := RunFused(context.Background(), sc, fusedTestOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	opts := fusedTestOptions(16)
	opts.Workers = 4
	opts.Depth = 4
	parallel, err := RunFused(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Predictions[0].Total != parallel.Predictions[0].Total {
		t.Errorf("parallel fused prediction %g, serial %g",
			parallel.Predictions[0].Total, serial.Predictions[0].Total)
	}
	if serial.Workloads[0].Peak() != parallel.Workloads[0].Peak() {
		t.Errorf("parallel peak %d, serial %d", parallel.Workloads[0].Peak(), serial.Workloads[0].Peak())
	}
}
