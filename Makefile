# Development targets. `make verify` is the full pre-merge gate: build,
# vet, and the test suite under the race detector.

GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: build vet race

bench:
	$(GO) test -bench=. -benchmem ./...
