# Development targets. `make verify` is the full pre-merge gate: build,
# vet, the project lint suite, and the test suite under the race detector.

GO ?= go

.PHONY: build test vet lint race verify bench bench-pipeline serve-smoke sweep-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs cmd/piclint, the project's own analyzer suite (determinism,
# floatcmp, closecheck, ctxflow, obsnil). A non-zero exit means an
# unsuppressed finding; waive deliberate violations with a reasoned
# `//lint:allow <analyzer> <reason>` on or above the flagged line.
lint:
	$(GO) run ./cmd/piclint ./...

# The root package alone runs ~10 min under the race detector (golden +
# fused end-to-end tests), which brushes go test's default 10m per-package
# timeout on a loaded machine; give it headroom.
race:
	$(GO) test -race -timeout 30m ./...

verify: build vet lint race

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-pipeline regenerates BENCH_pipeline.json: paper-scale fill (scalar
# vs tiled), StreamConcurrent frames/sec, and fused-run wall time. Use
# BENCHTIME=1x for a quick smoke pass.
bench-pipeline:
	./scripts/pipeline_bench.sh

# serve-smoke boots picserve on the golden fixture, exercises /readyz and
# /v1/predict, and requires a clean SIGTERM drain with a manifest — then
# does the same for the picgate coordinator over a three-shard fleet,
# killing one shard mid-run to prove the failover story on real processes.
serve-smoke:
	./scripts/picserve_smoke.sh
	./scripts/picgate_smoke.sh

# sweep-smoke runs the capacity-planning sweep through both front ends —
# `predict -sweep` (twice, at different worker counts; byte-identical JSON
# required) and picserve's POST /v1/optimize — and diffs the ranked
# frontiers, which must agree exactly.
sweep-smoke:
	./scripts/sweep_smoke.sh
