# Development targets. `make verify` is the full pre-merge gate: build,
# vet, the project lint suite, and the test suite under the race detector.

GO ?= go

.PHONY: build test vet lint race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs cmd/piclint, the project's own analyzer suite (determinism,
# floatcmp, closecheck, ctxflow, obsnil). A non-zero exit means an
# unsuppressed finding; waive deliberate violations with a reasoned
# `//lint:allow <analyzer> <reason>` on or above the flagged line.
lint:
	$(GO) run ./cmd/piclint ./...

race:
	$(GO) test -race ./...

verify: build vet lint race

bench:
	$(GO) test -bench=. -benchmem ./...
