#!/usr/bin/env bash
# picgate end-to-end smoke: boot three picserve shards on the committed
# golden trace, front them with picgate, and prove the resilience story on
# real processes:
#
#   1. predictions route through the gate (200s, X-Picgate-Backend set);
#   2. SIGKILL one shard mid-run — the gate ejects it and KEEPS answering
#      200s for every key (retries + rehashing absorb the loss);
#   3. /v1/membership reports the ejection;
#   4. SIGTERM drains the gate cleanly (exit 0, manifest written).
#
# CI runs this via `make serve-smoke`; it is also a local check:
#
#   ./scripts/picgate_smoke.sh
#
# Needs: go, curl, python3. No fixed ports — everything binds :0 and the
# script scrapes bound addresses from log lines.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
declare -a shard_pids=()
gate_pid=""

cleanup() {
    if [[ -n "$gate_pid" ]] && kill -0 "$gate_pid" 2>/dev/null; then
        kill -KILL "$gate_pid" 2>/dev/null || true
    fi
    for p in "${shard_pids[@]:-}"; do
        if [[ -n "$p" ]] && kill -0 "$p" 2>/dev/null; then
            kill -KILL "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    for f in "$workdir"/*.log; do
        echo "--- $f ---" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

echo "== build"
go build -o "$workdir/picserve" ./cmd/picserve
go build -o "$workdir/picgate" ./cmd/picgate

scrape_addr() { # logfile pattern
    local addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n "$2" "$1" | head -1)
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    echo "$addr"
}

echo "== start 3 picserve shards on the golden fixture"
backends=""
for i in 1 2 3; do
    "$workdir/picserve" \
        -listen 127.0.0.1:0 \
        -trace golden=testdata/golden/trace.bin \
        >"$workdir/shard$i.log" 2>&1 &
    shard_pids+=($!)
    disown
done
for i in 1 2 3; do
    addr=$(scrape_addr "$workdir/shard$i.log" 's#.*serving on http://\([^ ]*\) .*#\1#p')
    [[ -n "$addr" ]] || fail "shard $i never logged its address"
    backends="${backends:+$backends,}$addr"
done
echo "   shards: $backends"

echo "== start picgate over the fleet"
"$workdir/picgate" \
    -listen 127.0.0.1:0 \
    -backends "$backends" \
    -health-interval 200ms -fail-threshold 2 -revive-threshold 2 \
    -max-retries 2 -breaker-cooldown 1s \
    -metrics "$workdir/manifest.json" \
    >"$workdir/picgate.log" 2>&1 &
gate_pid=$!
gate_addr=$(scrape_addr "$workdir/picgate.log" 's#.*gating on http://\([^ ]*\) .*#\1#p')
[[ -n "$gate_addr" ]] || fail "picgate never logged its address"
base="http://$gate_addr"
echo "   gating at $base"

ready=""
for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$base/readyz" 2>/dev/null; then
        ready=yes
        break
    fi
    kill -0 "$gate_pid" 2>/dev/null || fail "picgate exited during startup"
    sleep 0.1
done
[[ -n "$ready" ]] || fail "gate /readyz never returned 200"

# predict_all label: every key must answer 200 through the gate.
predict_all() {
    local label=$1 seed status
    : >"$workdir/owners.$label"
    for seed in 1 2 3 4 5 6; do
        status=$(curl -sS -o "$workdir/predict.json" -D "$workdir/headers.txt" -w '%{http_code}' \
            -X POST "$base/v1/predict" \
            -H 'Content-Type: application/json' \
            -d "{\"scenario\":\"golden\",\"ranks\":[8,16],\"model\":{\"fast\":true,\"seed\":$seed}}")
        [[ "$status" == 200 ]] || fail "$label: seed $seed returned $status: $(cat "$workdir/predict.json")"
        grep -i '^x-picgate-backend:' "$workdir/headers.txt" \
            | tr -d '\r' | cut -d' ' -f2 >>"$workdir/owners.$label"
    done
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))["results"]' "$workdir/predict.json" \
        || fail "$label: predict body malformed"
}

echo "== predictions route through the gate (6 keys)"
predict_all healthy
echo "   shards used: $(sort -u "$workdir/owners.healthy" | tr '\n' ' ')"

echo "== SIGKILL shard 3 mid-run"
kill -KILL "${shard_pids[2]}"
shard_pids[2]=""
# Requests must keep answering 200 IMMEDIATELY — pre-ejection the gate
# retries onto replicas, post-ejection the ring rehashes.
predict_all during-kill
sleep 0.7 # two failed 200ms polls -> ejection
predict_all after-eject
grep -q "${backends##*,}" "$workdir/owners.after-eject" \
    && fail "ejected shard still answered a request"

echo "== membership reflects the ejection"
curl -fsS "$base/v1/membership" >"$workdir/membership.json" || fail "/v1/membership failed"
python3 - "$workdir/membership.json" <<'PY' || fail "membership did not record the ejection"
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["healthy"] == 2, m
unhealthy = [x for x in m["members"] if not x["healthy"]]
assert len(unhealthy) == 1, m["members"]
print("   ejected:", unhealthy[0]["addr"], "last error:", unhealthy[0].get("last_error", "")[:60])
PY

echo "== SIGTERM drains the gate cleanly"
kill -TERM "$gate_pid"
rc=0
wait "$gate_pid" || rc=$?
gate_pid=""
[[ "$rc" == 0 ]] || fail "picgate exited $rc after SIGTERM, want 0"
grep -q "drained cleanly" "$workdir/picgate.log" || fail "no 'drained cleanly' log line"
python3 - "$workdir/manifest.json" <<'PY' || fail "gate manifest malformed"
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["tool"] == "picgate", m.get("tool")
counters = m.get("counters", {})
assert counters.get("gate.requests", 0) >= 18, counters
assert "instance_id" in m.get("config", {}), m.get("config")
PY

echo "PASS: picgate smoke (kill-one-shard, zero client-visible errors)"
