#!/usr/bin/env bash
# picserve end-to-end smoke: build the service, serve the committed golden
# trace, hit /readyz and /v1/predict, assert well-formed 200 responses,
# then SIGTERM it and require a clean drain (exit 0) with the -metrics
# manifest written. CI runs this; it is also a convenient local check:
#
#   ./scripts/picserve_smoke.sh
#
# Needs: go, curl, python3 (JSON validation). No fixed port — the service
# binds :0 and the script scrapes the bound address from its log line.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
logfile="$workdir/picserve.log"
manifest="$workdir/manifest.json"
pid=""

cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- picserve log ---" >&2
    cat "$logfile" >&2 || true
    exit 1
}

echo "== build"
go build -o "$workdir/picserve" ./cmd/picserve

echo "== start on the golden fixture"
"$workdir/picserve" \
    -listen 127.0.0.1:0 \
    -trace golden=testdata/golden/trace.bin \
    -metrics "$manifest" \
    >"$logfile" 2>&1 &
pid=$!

# Scrape the bound address from the startup log line.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*serving on http://\([^ ]*\) .*#\1#p' "$logfile" | head -1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || fail "picserve exited during startup"
    sleep 0.1
done
[[ -n "$addr" ]] || fail "no 'serving on' line within 10s"
base="http://$addr"
echo "   serving at $base"

echo "== readiness"
ready=""
for _ in $(seq 1 100); do
    if curl -fsS -o "$workdir/readyz.json" "$base/readyz" 2>/dev/null; then
        ready=yes
        break
    fi
    sleep 0.1
done
[[ -n "$ready" ]] || fail "/readyz never returned 200"
python3 -m json.tool "$workdir/readyz.json" >/dev/null || fail "/readyz body is not JSON"

echo "== predict (trains a fast model on first use)"
status=$(curl -sS -o "$workdir/predict.json" -w '%{http_code}' \
    -X POST "$base/v1/predict" \
    -H 'Content-Type: application/json' \
    -d '{"scenario":"golden","ranks":[8,16],"mapping":"bin","model":{"fast":true,"seed":1}}')
[[ "$status" == 200 ]] || fail "/v1/predict returned $status: $(cat "$workdir/predict.json")"
python3 - "$workdir/predict.json" <<'PY' || fail "/v1/predict body malformed"
import json, sys
with open(sys.argv[1]) as f:
    body = json.load(f)
results = body["results"]
assert [r["ranks"] for r in results] == [8, 16], results
assert all(r["total_sec"] > 0 for r in results), results
assert body["cache"] == "miss", body
print("   predicted:", ", ".join("R=%d %.3gs" % (r["ranks"], r["total_sec"]) for r in results))
PY

echo "== second request hits the model cache"
curl -fsS -o "$workdir/predict2.json" -X POST "$base/v1/predict" \
    -d '{"scenario":"golden","ranks":[8],"model":{"fast":true,"seed":1}}' \
    || fail "warm /v1/predict failed"
python3 -c 'import json,sys; assert json.load(open(sys.argv[1]))["cache"]=="hit"' \
    "$workdir/predict2.json" || fail "second request did not hit the cache"

echo "== registry view"
curl -fsS "$base/v1/models" | python3 -m json.tool >/dev/null || fail "/v1/models malformed"

echo "== SIGTERM drains cleanly"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[[ "$rc" == 0 ]] || fail "picserve exited $rc after SIGTERM, want 0"
grep -q "drained cleanly" "$logfile" || fail "no 'drained cleanly' log line"
[[ -s "$manifest" ]] || fail "-metrics manifest missing after drain"
python3 - "$manifest" <<'PY' || fail "manifest malformed"
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["tool"] == "picserve", m.get("tool")
counters = m.get("counters", {})
assert counters.get("serve.requests", 0) >= 2, counters
assert counters.get("serve.model_cache.misses", 0) == 1, counters
assert counters.get("serve.model_cache.hits", 0) >= 1, counters
PY

echo "PASS: picserve smoke"
