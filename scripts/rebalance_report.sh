#!/usr/bin/env bash
# rebalance_report.sh regenerates REPORT_rebalance.md — the dynamic
# load-balancing study: predicted speedup of each internal/rebalance policy
# (periodic, threshold, diffusion) over static bisection on the Hele-Shaw
# bed-dispersal scenario, element mapping, processor configurations up to
# the paper-scale R=8352, with rebalance migration priced as LogP messages
# so every speedup is net of migration cost.
#
#   ./scripts/rebalance_report.sh               # full-budget models (~min)
#   FAST=1 ./scripts/rebalance_report.sh        # fast model fits (smoke)
#   OUT=elsewhere.md ./scripts/rebalance_report.sh
#
# Needs: go.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${OUT:-REPORT_rebalance.md}

args=(-rebalance-report "$OUT")
if [[ "${FAST:-0}" != 0 ]]; then
    args+=(-fast)
fi

go run ./cmd/experiments "${args[@]}"
echo "PASS: wrote $OUT"
