#!/usr/bin/env bash
# sweep end-to-end smoke: the capacity-planning engine must answer the same
# question identically through both front ends. It runs `predict -sweep`
# over the committed golden trace (twice, and at different worker counts —
# the JSON must be byte-identical), boots picserve, POSTs the same grid to
# /v1/optimize, and diffs the ranked frontiers: fastest, knee, knee score,
# and every frontier point must agree exactly between CLI and service.
# Finishes with a SIGTERM drain. CI runs this; also a local check:
#
#   ./scripts/sweep_smoke.sh
#
# Needs: go, curl, python3. No fixed port — picserve binds :0 and the
# script scrapes the bound address from its log line.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
logfile="$workdir/picserve.log"
pid=""

cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- picserve log ---" >&2
    cat "$logfile" >&2 || true
    exit 1
}

# One grid, both front ends. Matches the golden fixture's platform: filter
# 0.00428 (hele-shaw), 16384 elements, N=4, quartz, fast seed-1 models.
SWEEP_RANKS="8-32:x2"
FILTER=0.00428
TOP=6

echo "== build"
go build -o "$workdir/predict" ./cmd/predict
go build -o "$workdir/picserve" ./cmd/picserve

echo "== CLI sweep (twice, plus single-worker) must be byte-identical"
sweep_cli() {
    "$workdir/predict" -trace testdata/golden/trace.bin -sweep \
        -sweep-ranks "$SWEEP_RANKS" -mappings bin -machines quartz \
        -model-kinds synthetic -filter "$FILTER" -fast -top "$TOP" \
        -sweep-workers "$1" -json
}
sweep_cli 4 >"$workdir/cli.json" || fail "predict -sweep failed"
sweep_cli 4 >"$workdir/cli2.json" || fail "repeat predict -sweep failed"
sweep_cli 1 >"$workdir/cli1w.json" || fail "single-worker predict -sweep failed"
cmp -s "$workdir/cli.json" "$workdir/cli2.json" \
    || fail "two identical sweeps produced different JSON"
cmp -s "$workdir/cli.json" "$workdir/cli1w.json" \
    || fail "-sweep-workers 1 changed the sweep JSON (worker-count leak)"

echo "== start picserve on the golden fixture"
"$workdir/picserve" \
    -listen 127.0.0.1:0 \
    -trace golden=testdata/golden/trace.bin \
    >"$logfile" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*serving on http://\([^ ]*\) .*#\1#p' "$logfile" | head -1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || fail "picserve exited during startup"
    sleep 0.1
done
[[ -n "$addr" ]] || fail "no 'serving on' line within 10s"
base="http://$addr"
echo "   serving at $base"
for _ in $(seq 1 100); do
    curl -fsS -o /dev/null "$base/readyz" 2>/dev/null && break
    sleep 0.1
done

echo "== POST /v1/optimize with the same grid"
status=$(curl -sS -o "$workdir/serve.json" -w '%{http_code}' \
    -X POST "$base/v1/optimize" \
    -H 'Content-Type: application/json' \
    -d "{\"scenario\":\"golden\",\"ranks\":\"$SWEEP_RANKS\",\"mappings\":[\"bin\"],
         \"machines\":[\"quartz\"],\"model_kinds\":[\"synthetic\"],
         \"filter\":$FILTER,\"top\":$TOP,\"model\":{\"fast\":true,\"seed\":1}}")
[[ "$status" == 200 ]] || fail "/v1/optimize returned $status: $(cat "$workdir/serve.json")"

echo "== CLI and service frontiers must agree exactly"
python3 - "$workdir/cli.json" "$workdir/serve.json" <<'PY' || fail "CLI and /v1/optimize disagree"
import json, sys
cli = json.load(open(sys.argv[1]))["sweep"]
srv = json.load(open(sys.argv[2]))["sweep"]
for field in ("configs", "shared_builds", "frontier", "fastest", "knee", "knee_score"):
    if cli[field] != srv[field]:
        sys.exit(f"{field} differs:\n  cli : {cli[field]}\n  serve: {srv[field]}")
front = cli["frontier"]
assert front, "empty frontier"
totals = [p["total_sec"] for p in front]
assert totals == sorted(totals), f"frontier not sorted: {totals}"
assert all(t > 0 for t in totals), totals
print(f"   {cli['configs']} configs, {cli['shared_builds']} shared builds; "
      f"fastest R={cli['fastest']['ranks']} at {cli['fastest']['total_sec']:.3g}s, "
      f"knee R={cli['knee']['ranks']}")
PY

echo "== sweep warmed the point-predict cache"
curl -fsS -o "$workdir/predict.json" -X POST "$base/v1/predict" \
    -d "{\"scenario\":\"golden\",\"ranks\":[8],\"filter\":$FILTER,\"model\":{\"fast\":true,\"seed\":1}}" \
    || fail "post-sweep /v1/predict failed"
python3 -c 'import json,sys; assert json.load(open(sys.argv[1]))["cache"]=="hit", "not a cache hit"' \
    "$workdir/predict.json" || fail "post-sweep predict missed the model cache"

echo "== SIGTERM drains cleanly"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[[ "$rc" == 0 ]] || fail "picserve exited $rc after SIGTERM, want 0"
grep -q "drained cleanly" "$logfile" || fail "no 'drained cleanly' log line"

echo "PASS: sweep smoke"
