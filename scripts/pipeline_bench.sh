#!/usr/bin/env bash
# pipeline bench harness: measures the three layers the cell-tiled particle
# layout touches and writes the comparison to BENCH_pipeline.json —
#
#   fill    : paper-scale matrix fill (N_p = 599,257 on R = 8352 ranks),
#             scalar vs tiled, for both bin and element mapping;
#   stream  : frames/sec through StreamConcurrent with the generator as the
#             sink, scalar vs tiled;
#   fused   : wall time of one fused simulate→build→predict run;
#   sweep   : a paper-scale capacity-planning sweep (24 configurations over
#             ranks 1044–8352), shared-build engine vs the naive
#             one-pipeline-per-configuration loop;
#   rebalance: static bisection vs each dynamic load-balancing policy on a
#             clustered element-mapped trace — predicted wall time, priced
#             migration seconds, and rebalance epochs per policy.
#
# The acceptance numbers are speedup.fill_bin (the tiled fill must clear
# 1.5× over the scalar fill at paper scale on the bin mapping) and
# speedup.sweep_shared_build (the sweep engine must clear 5× over naive
# per-configuration evaluation). BENCHTIME=1x gives a CI smoke run; the
# committed JSON uses the default 3x (sweep runs at 1x regardless — one
# naive iteration is ~50 s of pure rebuild work).
#
#   BENCHTIME=3x ./scripts/pipeline_bench.sh
#
# Needs: go, python3.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-3x}
OUT=${OUT:-BENCH_pipeline.json}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

echo "== fill (paper scale, scalar vs tiled; benchtime $BENCHTIME)"
go test -run '^$' -bench 'PaperFill' -benchtime "$BENCHTIME" ./internal/core/ \
    | tee "$workdir/fill.txt" || fail "fill benchmarks failed"

echo "== stream (StreamConcurrent frames/sec, scalar vs tiled)"
go test -run '^$' -bench 'StreamConcurrent' -benchtime "$BENCHTIME" ./internal/pipeline/ \
    | tee "$workdir/stream.txt" || fail "stream benchmarks failed"

echo "== fused (single-process simulate→build→predict wall time)"
go test -run '^$' -bench 'FusedPipeline$' -benchtime "$BENCHTIME" . \
    | tee "$workdir/fused.txt" || fail "fused benchmark failed"

echo "== rebalance (static vs dynamic policies, predicted + migration cost)"
go test -run '^$' -bench 'Rebalance' -benchtime "$BENCHTIME" . \
    | tee "$workdir/rebalance.txt" || fail "rebalance benchmarks failed"

echo "== sweep (paper-scale capacity planning, shared builds vs naive)"
go test -run '^$' -bench 'SweepPaper' -benchtime 1x -timeout 30m ./internal/sweep/ \
    | tee "$workdir/sweep.txt" || fail "sweep benchmarks failed"

echo "== write $OUT"
python3 - "$workdir" "$OUT" "$BENCHTIME" <<'PY' || fail "assembling stats failed"
import json, os, re, sys

workdir, out, benchtime = sys.argv[1], sys.argv[2], sys.argv[3]

def parse(path):
    """Benchmark name -> {"ms": ns/op in ms, "<unit>": extra metrics}."""
    runs = {}
    pat = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$")
    for line in open(os.path.join(workdir, path)):
        m = pat.match(line)
        if not m:
            continue
        name, rest = m.group(1), m.group(2)
        r = runs.setdefault(name, {})
        for val, unit in re.findall(r"([\d.e+]+)\s+(\S+)", rest):
            key = "ms" if unit == "ns/op" else unit.replace("/", "_per_")
            v = float(val) / 1e6 if unit == "ns/op" else float(val)
            # -count>1 repeats a benchmark; keep the fastest (least noisy) run.
            if key not in r or (key == "ms" and v < r[key]):
                r[key] = v
    return runs

fill = parse("fill.txt")
stream = parse("stream.txt")
fused = parse("fused.txt")
sweep = parse("sweep.txt")
rebal = parse("rebalance.txt")

def ms(runs, name):
    try:
        return round(runs["Benchmark" + name]["ms"], 1)
    except KeyError:
        sys.exit(f"benchmark {name} missing from output")

doc = {
    "bench": "tiled particle layout: fill / stream / fused hot paths",
    "config": {
        "np": 599257,
        "ranks": 8352,
        "filter_radius": 0.004,
        "benchtime": benchtime,
        # Speedups here come from the layout (batched ghost queries, hoisted
        # per-tile windows), not parallelism — both variants run serially, so
        # the ratios hold on a 1-core host.
        "host_cores": os.cpu_count(),
    },
    "fill_ms_per_frame": {
        "bin_scalar": ms(fill, "PaperFillBinScalar"),
        "bin_tiled": ms(fill, "PaperFillBinTiled"),
        "element_scalar": ms(fill, "PaperFillElementScalar"),
        "element_tiled": ms(fill, "PaperFillElementTiled"),
    },
    "stream_frames_per_s": {
        "scalar": round(stream["BenchmarkStreamConcurrentScalar"]["frames_per_s"], 2),
        "tiled": round(stream["BenchmarkStreamConcurrentTiled"]["frames_per_s"], 2),
    },
    "fused_run_ms": ms(fused, "FusedPipeline"),
    # 24 configurations (4 rank counts x bin x 3 machines x 2 model kinds)
    # over the paper-scale trace: the shared-build engine does 4 workload
    # builds where the naive loop does 24.
    "sweep_configs_per_s": {
        "shared_build": round(sweep["BenchmarkSweepPaperShared"]["configs_per_s"], 4),
        "naive": round(sweep["BenchmarkSweepPaperNaive"]["configs_per_s"], 4),
    },
}

# Dynamic load balancing: predicted application time per policy (the model
# output) plus the pipeline's own query wall time. migration_s is the
# *marginal* barrier extension the priced transfers cause — 0 means the
# epoch's messages hid entirely under the slowest rank's compute.
static_pred = None
rebal_doc = {}
for policy in ("Static", "Periodic", "Threshold", "Diffusion"):
    r = rebal.get("BenchmarkRebalance" + policy)
    if r is None:
        sys.exit(f"benchmark Rebalance{policy} missing from output")
    entry = {
        "run_ms": round(r["ms"], 1),
        "predicted_s": round(r["predicted_s"], 6),
        "migration_s": round(r["migration_s"], 6),
        "epochs": int(r["epochs"]),
        "migrated_elements": int(r["mig_elems"]),
        "migrated_particles": int(r["mig_parts"]),
    }
    if policy == "Static":
        static_pred = entry["predicted_s"]
    else:
        entry["predicted_speedup_vs_static"] = round(static_pred / entry["predicted_s"], 2)
    rebal_doc[policy.lower()] = entry
doc["rebalance"] = rebal_doc
f = doc["fill_ms_per_frame"]
s = doc["stream_frames_per_s"]
sw = doc["sweep_configs_per_s"]
doc["speedup"] = {
    "fill_bin": round(f["bin_scalar"] / f["bin_tiled"], 2),
    "fill_element": round(f["element_scalar"] / f["element_tiled"], 2),
    "stream": round(s["tiled"] / s["scalar"], 2),
    "sweep_shared_build": round(sw["shared_build"] / sw["naive"], 2),
}
with open(out, "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
print(f"   fill bin    : {f['bin_scalar']:.0f} -> {f['bin_tiled']:.0f} ms "
      f"({doc['speedup']['fill_bin']}x)")
print(f"   fill element: {f['element_scalar']:.0f} -> {f['element_tiled']:.0f} ms "
      f"({doc['speedup']['fill_element']}x)")
print(f"   stream      : {s['scalar']:.2f} -> {s['tiled']:.2f} frames/s "
      f"({doc['speedup']['stream']}x)")
print(f"   fused run   : {doc['fused_run_ms']:.0f} ms")
print(f"   sweep       : {sw['naive']:.3f} -> {sw['shared_build']:.3f} configs/s "
      f"({doc['speedup']['sweep_shared_build']}x)")
for policy, entry in rebal_doc.items():
    sp = entry.get("predicted_speedup_vs_static")
    tail = f" ({sp}x vs static)" if sp else ""
    print(f"   rebalance {policy:<9}: predicted {entry['predicted_s']:.4f} s, "
          f"migration {entry['migration_s']:.6f} s, {entry['epochs']} epochs{tail}")
PY

echo "PASS: wrote $OUT"
