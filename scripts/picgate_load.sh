#!/usr/bin/env bash
# picgate load harness: measures serving throughput in two topologies and
# writes the comparison to BENCH_serve.json —
#
#   single_node : one picserve, driven directly (no gate);
#   sharded_3   : three picserve shards behind picgate.
#
# Both runs use the same key count, concurrency, and duration, with a
# warmup pass so measured traffic hits trained models. The sharded run's
# per-shard breakdown shows the consistent-hash spread and cache locality
# (every key trains on exactly one shard).
#
#   DURATION=10s CONCURRENCY=8 KEYS=6 ./scripts/picgate_load.sh
#
# Needs: go, curl, python3. Everything binds :0.
set -euo pipefail

cd "$(dirname "$0")/.."

DURATION=${DURATION:-10s}
CONCURRENCY=${CONCURRENCY:-8}
KEYS=${KEYS:-6}
OUT=${OUT:-BENCH_serve.json}

workdir=$(mktemp -d)
: >"$workdir/pids"

# Pids live in a file, not a shell array: start_shard must not run inside a
# command substitution (a subshell would silently lose the pid and leak the
# process past cleanup — and a leaked fleet skews every later bench run).
cleanup() {
    local p pids=""
    [[ -f "$workdir/pids" ]] && pids=$(cat "$workdir/pids")
    for p in $pids; do
        kill -TERM "$p" 2>/dev/null || true
    done
    sleep 0.3
    for p in $pids; do
        kill -KILL "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    for f in "$workdir"/*.log; do
        echo "--- $f ---" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

echo "== build"
go build -o "$workdir/picserve" ./cmd/picserve
go build -o "$workdir/picgate" ./cmd/picgate

start_shard() { # index; sets $shard_addr (no subshell — the pid must persist)
    local i=$1
    "$workdir/picserve" \
        -listen 127.0.0.1:0 \
        -trace golden=testdata/golden/trace.bin \
        >"$workdir/shard$i.log" 2>&1 &
    shard_pid=$!
    echo $shard_pid >>"$workdir/pids"
    disown
    shard_addr=""
    for _ in $(seq 1 100); do
        shard_addr=$(sed -n 's#.*serving on http://\([^ ]*\) .*#\1#p' "$workdir/shard$i.log" | head -1)
        [[ -n "$shard_addr" ]] && break
        sleep 0.1
    done
    [[ -n "$shard_addr" ]] || fail "shard $i never logged its address"
}

wait_ready() { # base_url
    for _ in $(seq 1 100); do
        curl -fsS -o /dev/null "$1/readyz" 2>/dev/null && return 0
        sleep 0.1
    done
    fail "$1/readyz never returned 200"
}

echo "== single-node baseline"
start_shard 0
single_addr=$shard_addr
single_pid=$shard_pid
wait_ready "http://$single_addr"
"$workdir/picgate" -load \
    -target "http://$single_addr" \
    -duration "$DURATION" -concurrency "$CONCURRENCY" -keys "$KEYS" \
    -scenario golden -ranks 8,16 \
    -o "$workdir/single.json" || fail "single-node load run failed"

# The baseline shard must not stay up competing for CPU with the fleet —
# on small hosts that skews the sharded measurement.
kill -TERM "$single_pid" 2>/dev/null || true

echo "== 3-shard fleet behind picgate"
backends=""
for i in 1 2 3; do
    start_shard "$i"
    backends="${backends:+$backends,}$shard_addr"
done
"$workdir/picgate" \
    -listen 127.0.0.1:0 \
    -backends "$backends" \
    >"$workdir/picgate.log" 2>&1 &
echo $! >>"$workdir/pids"
disown
gate_addr=""
for _ in $(seq 1 100); do
    gate_addr=$(sed -n 's#.*gating on http://\([^ ]*\) .*#\1#p' "$workdir/picgate.log" | head -1)
    [[ -n "$gate_addr" ]] && break
    sleep 0.1
done
[[ -n "$gate_addr" ]] || fail "picgate never logged its address"
wait_ready "http://$gate_addr"
"$workdir/picgate" -load \
    -target "http://$gate_addr" \
    -duration "$DURATION" -concurrency "$CONCURRENCY" -keys "$KEYS" \
    -scenario golden -ranks 8,16 \
    -o "$workdir/sharded.json" || fail "sharded load run failed"

echo "== write $OUT"
python3 - "$workdir/single.json" "$workdir/sharded.json" "$OUT" \
    "$DURATION" "$CONCURRENCY" "$KEYS" <<'PY' || fail "merging stats failed"
import json, os, sys
single = json.load(open(sys.argv[1]))
sharded = json.load(open(sys.argv[2]))
doc = {
    "bench": "picgate serving throughput",
    "config": {
        "duration": sys.argv[4],
        "concurrency": int(sys.argv[5]),
        "keys": int(sys.argv[6]),
        "scenario": "golden fixture, ranks 8+16, fast models, warmed",
        # Sharding wins require cores for the shards to spread over; on a
        # 1-core host the comparison measures coordination overhead instead.
        "host_cores": os.cpu_count(),
    },
    "single_node": single,
    "sharded_3": sharded,
}
if single.get("rps"):
    doc["speedup_rps"] = round(sharded["rps"] / single["rps"], 3)
with open(sys.argv[3], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
for name, s in (("single", single), ("sharded", sharded)):
    print(f"   {name}: {s['rps']:.0f} rps, p50 {s['p50_ms']:.2f}ms, "
          f"p99 {s['p99_ms']:.2f}ms, errors {s['errors']}")
shards = sharded.get("shards", {})
spread = {k: v["requests"] for k, v in shards.items()}
print("   shard spread:", spread)
rate = sharded.get("error_rate", 0.0)
if rate >= 0.01:
    sys.exit(f"sharded error rate {rate:.2%} >= 1%; fleet was unhealthy during measurement")
PY

echo "PASS: wrote $OUT"
