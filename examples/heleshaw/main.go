// Hele-Shaw scalability prediction: the paper's §IV-B study.
//
// A single trace of the Hele-Shaw case study predicts the peak particle
// workload at 1044, 2088, 4176 and 8352 processors, revealing that the
// bin-size threshold caps useful parallelism: the relaxed bin count gives
// the optimal processor count, beyond which adding processors cannot
// improve the particle-solver's critical path.
//
// Run with:
//
//	go run ./examples/heleshaw            # experiment scale (~15 s)
//	go run ./examples/heleshaw -quick     # shrunken demo (~1 s)
package main

import (
	"flag"
	"fmt"
	"log"

	"picpredict"
)

func main() {
	log.SetFlags(0)
	quick := flag.Bool("quick", false, "run a shrunken (less faithful) configuration")
	flag.Parse()

	spec := picpredict.HeleShaw()
	rankSets := []int{1044, 2088, 4176, 8352}
	if *quick {
		spec = spec.
			WithParticles(3000).
			WithElements(64, 64, 1).
			WithSteps(400).
			WithFilterRadius(0.011).
			WithBurst(0.0012, 1) // shock arrives earlier in the short run
		rankSets = []int{128, 256, 512}
	}

	fmt.Printf("running %s (%d particles, %d iterations)...\n", spec.Name(), spec.NumParticles(), spec.Steps())
	trace, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Strong-scaling prediction: peak particles per processor per config.
	fmt.Printf("\npeak particles per processor (bin mapping):\n%10s", "iteration")
	for _, r := range rankSets {
		fmt.Printf(" %9s", fmt.Sprintf("R=%d", r))
	}
	fmt.Println()
	peaks := make(map[int][]int64, len(rankSets))
	for _, ranks := range rankSets {
		wl, err := trace.GenerateWorkload(picpredict.WorkloadOptions{
			Ranks:        ranks,
			Mapping:      picpredict.MappingBin,
			FilterRadius: spec.FilterRadius(),
		})
		if err != nil {
			log.Fatal(err)
		}
		peaks[ranks] = wl.PeakPerFrame()
	}
	for k, it := range trace.Iterations() {
		fmt.Printf("%10d", it)
		for _, r := range rankSets {
			fmt.Printf(" %9d", peaks[r][k])
		}
		fmt.Println()
	}

	// The optimal processor count: relax the rank limit and let the
	// threshold alone decide the bin count (Fig 6).
	relaxed, err := trace.GenerateWorkload(picpredict.WorkloadOptions{
		Ranks:        trace.NumParticles(),
		Mapping:      picpredict.MappingBin,
		FilterRadius: spec.FilterRadius(),
		RelaxedBins:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbins over the run: %v\n", relaxed.BinsPerFrame())
	fmt.Printf("maximum bins = optimal processor count for this problem: %d\n", relaxed.MaxBins())
	fmt.Println("scaling beyond this count cannot improve the particle solver (paper §IV-B).")
}
