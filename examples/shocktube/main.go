// Shock-tube migration study: the Euler-solver gas phase end-to-end.
//
// A Sod-style shock (solved by the built-in compressible Euler solver, not
// an analytic flow) sweeps a particle curtain down the tube. Unlike the
// Hele-Shaw bed — where the irregularity is *where* particles sit — this
// workload is dominated by *migration*: the whole curtain crosses processor
// boundaries, filling the communication matrix P_comm. The example prints
// the migration series and the busiest processor-pair transfers per
// interval.
//
// Run with:
//
//	go run ./examples/shocktube
package main

import (
	"fmt"
	"log"

	"picpredict"
)

func main() {
	log.SetFlags(0)

	spec := picpredict.ShockTubeScenario()
	fmt.Printf("running %s: %d particles, Euler-solver gas phase\n", spec.Name(), spec.NumParticles())
	trace, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}

	const ranks = 64
	wl, err := trace.GenerateWorkload(picpredict.WorkloadOptions{
		Ranks:        ranks,
		Mapping:      picpredict.MappingElement, // locality-preserving: migration visible
		FilterRadius: spec.FilterRadius(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmigration per interval (element mapping, R=%d):\n", ranks)
	fmt.Printf("%10s %12s %10s  %s\n", "iteration", "migrations", "busy", "busiest transfer")
	mig := wl.MigrationsPerFrame()
	busy := wl.NonZeroRanksPerFrame()
	for k, it := range wl.Iterations() {
		var top picpredict.CommEntry
		for _, e := range wl.CommAt(k) {
			if e.Count > top.Count {
				top = e
			}
		}
		desc := "-"
		if top.Count > 0 {
			desc = fmt.Sprintf("rank %d → %d: %d particles", top.Src, top.Dst, top.Count)
		}
		fmt.Printf("%10d %12d %10d  %s\n", it, mig[k], busy[k], desc)
	}

	var total int64
	for _, m := range mig {
		total += m
	}
	fmt.Printf("\ntotal particle migrations: %d (%.1f%% of the population per interval on average)\n",
		total, 100*float64(total)/float64(trace.NumParticles()*(wl.Frames()-1)))
	fmt.Println("the curtain's coherent downstream motion makes element mapping pay in P_comm,")
	fmt.Println("not (only) in load imbalance — the other face of PIC irregularity (§II-A).")
}
