// Instrumented-application model training: the paper's §II-B workflow.
//
// "To build performance models, we instrument the source code and benchmark
// key computation kernels of PIC application for various input parameter
// combinations." This example does exactly that: it runs the real PIC
// solver with per-phase wall-clock timing across a configuration sweep,
// fits one model per kernel (linear or symbolic regression), and prints the
// discovered closed forms next to their deterministic synthetic-testbed
// counterparts.
//
// Run with:
//
//	go run ./examples/apptrain
package main

import (
	"fmt"
	"log"
	"time"

	"picpredict"
)

func main() {
	log.SetFlags(0)

	fmt.Println("benchmarking the instrumented PIC application (per-phase wall-clock timing)...")
	start := time.Now()
	appModels, err := picpredict.TrainModelsFromApp(picpredict.AppTrainOptions{
		Np:     []int{1000, 4000, 16000},
		N:      []int{3, 5},
		Filter: []float64{0.5, 1.5},
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v\n\nmodels fitted to the measured application (this host):\n", time.Since(start).Round(time.Millisecond))
	for _, f := range appModels.Formulas() {
		fmt.Println("  ", f)
	}

	fmt.Println("\nfor contrast, the deterministic synthetic-testbed models:")
	synModels, err := picpredict.TrainModels(picpredict.TrainOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range synModels.Formulas() {
		fmt.Println("  ", f)
	}

	// Both model sets drive the same simulation platform.
	fmt.Println("\npredicting a 256-rank Hele-Shaw run with the app-trained models:")
	spec := picpredict.HeleShaw().WithParticles(5000).WithElements(64, 64, 1).WithSteps(600)
	trace, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}
	wl, err := trace.GenerateWorkload(picpredict.WorkloadOptions{
		Ranks: 256, Mapping: picpredict.MappingBin, FilterRadius: spec.FilterRadius(),
	})
	if err != nil {
		log.Fatal(err)
	}
	platform, err := picpredict.NewPlatform(appModels, picpredict.PlatformOptions{
		TotalElements: spec.NumElements(),
		N:             float64(spec.GridN()),
		Filter:        spec.FilterInElements(),
	})
	if err != nil {
		log.Fatal(err)
	}
	pred, err := platform.SimulateBSP(wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted particle-solver time: %.4g s (simulated utilization %.1f%%)\n",
		pred.Total, 100*pred.MeanUtilization())
	fmt.Println("unlike the synthetic testbed, these predictions model THIS machine (§II-B).")
}
