// Projection-filter parameter study: the paper's §IV-D performance-tuning
// workflow.
//
// The projection filter size controls how far a particle's influence
// spreads on the grid. It cuts both ways: a larger filter creates more
// ghost particles (higher create_ghost_particles cost), while a smaller
// filter lowers the threshold bin size, allowing more bins — a higher
// optimal processor count. The framework quantifies both effects from one
// trace so users can pick the trade-off between simulation fidelity and
// performance.
//
// Run with:
//
//	go run ./examples/paramstudy
package main

import (
	"fmt"
	"log"

	"picpredict"
)

func main() {
	log.SetFlags(0)

	spec := picpredict.HeleShaw().
		WithParticles(6000).
		WithElements(64, 64, 1).
		WithSteps(600)
	base := spec.FilterRadius()
	fmt.Printf("parameter study on %s: projection filter ∈ [%.4g, %.4g]\n\n", spec.Name(), base/2, base*4)

	trace, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training kernel models (Model Generator)...")
	models, err := picpredict.TrainModels(picpredict.TrainOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	elemWidth := 1.0 / 64 // domain width over elements per axis
	const ranks = 256
	fmt.Printf("\n%12s %10s %12s %14s %22s\n",
		"filter", "max bins", "peak ghosts", "ghosts/frame", "create_ghosts time (s)")
	for _, mult := range []float64{0.5, 1, 2, 3, 4} {
		filter := base * mult
		// Bin growth at this threshold (relaxed — Fig 10a).
		relaxed, err := trace.GenerateWorkload(picpredict.WorkloadOptions{
			Ranks:        trace.NumParticles(),
			Mapping:      picpredict.MappingBin,
			FilterRadius: filter,
			RelaxedBins:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Ghost load at this filter (Fig 10b).
		wl, err := trace.GenerateWorkload(picpredict.WorkloadOptions{
			Ranks:        ranks,
			Mapping:      picpredict.MappingBin,
			FilterRadius: filter,
		})
		if err != nil {
			log.Fatal(err)
		}
		var ghostsPerFrame int64
		if tg := wl.TotalGhosts(); len(tg) > 0 {
			for _, g := range tg {
				ghostsPerFrame += g
			}
			ghostsPerFrame /= int64(len(tg))
		}
		// Peak-rank kernel-time prediction from the fitted model.
		var peakNp, peakNgp int64
		for k := 0; k < wl.Frames(); k++ {
			for r := 0; r < wl.Ranks(); r++ {
				if np := wl.At(r, k); np > peakNp {
					peakNp, peakNgp = np, wl.GhostAt(r, k)
				}
			}
		}
		t, err := models.Predict("create_ghost_particles",
			float64(peakNp), float64(peakNgp),
			float64(spec.NumElements())/ranks, float64(spec.GridN()), filter/elemWidth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.4g %10d %12d %14d %22.3g\n",
			filter, relaxed.MaxBins(), wl.GhostPeak(), ghostsPerFrame, t)
	}

	fmt.Println("\nsmaller filters → more bins (more usable processors);")
	fmt.Println("larger filters → more ghost particles → costlier create_ghost_particles (paper Fig 10).")
}
