// Trace extrapolation: predicting a big run from a cheap one (§VI).
//
// Trace collection is the framework's main cost — a full-scale PIC run can
// take a day. This example collects a *small* trace (5,000 particles),
// extrapolates it 8× (synthetic particles shadow donor trajectories with
// spacing-scaled jitter), and compares the predicted workload distribution
// against the ground truth: an actual 40,000-particle run of the same
// scenario. The extrapolated prediction captures peak workload and
// utilization at a fraction of the simulation cost.
//
// Run with:
//
//	go run ./examples/extrapolation
package main

import (
	"fmt"
	"log"
	"time"

	"picpredict"
)

func main() {
	log.SetFlags(0)

	const factor = 8
	small := picpredict.HeleShaw().
		WithParticles(5000).
		WithElements(64, 64, 1).
		WithSteps(600).
		WithFilterRadius(0.008)
	big := small.WithParticles(small.NumParticles() * factor)

	fmt.Printf("low-fidelity run: %d particles...\n", small.NumParticles())
	t0 := time.Now()
	smallTrace, err := small.Run()
	if err != nil {
		log.Fatal(err)
	}
	smallCost := time.Since(t0)

	fmt.Printf("extrapolating %d× to %d particles...\n", factor, factor*small.NumParticles())
	t0 = time.Now()
	synthetic, err := smallTrace.Extrapolate(factor, 42)
	if err != nil {
		log.Fatal(err)
	}
	extraCost := time.Since(t0)

	fmt.Printf("ground truth run: %d particles (the cost extrapolation avoids)...\n", big.NumParticles())
	t0 = time.Now()
	truthTrace, err := big.Run()
	if err != nil {
		log.Fatal(err)
	}
	truthCost := time.Since(t0)

	const ranks = 512
	opts := picpredict.WorkloadOptions{
		Ranks:        ranks,
		Mapping:      picpredict.MappingBin,
		FilterRadius: small.FilterRadius(),
	}
	synthWl, err := synthetic.GenerateWorkload(opts)
	if err != nil {
		log.Fatal(err)
	}
	truthWl, err := truthTrace.GenerateWorkload(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nworkload comparison at R=%d (bin mapping):\n", ranks)
	fmt.Printf("%22s %14s %14s %10s\n", "", "extrapolated", "ground truth", "ratio")
	su, tu := synthWl.Utilization(), truthWl.Utilization()
	rows := []struct {
		name       string
		pred, real float64
	}{
		{"peak particles/proc", float64(synthWl.Peak()), float64(truthWl.Peak())},
		{"max bins", float64(synthWl.MaxBins()), float64(truthWl.MaxBins())},
		{"RU mean %", 100 * su.Mean, 100 * tu.Mean},
		{"imbalance", synthWl.Imbalance(), truthWl.Imbalance()},
	}
	for _, r := range rows {
		ratio := r.pred / r.real
		fmt.Printf("%22s %14.4g %14.4g %10.2f\n", r.name, r.pred, r.real, ratio)
	}

	fmt.Printf("\ncosts: low-fidelity run %v + extrapolation %v  vs  full run %v\n",
		smallCost.Round(time.Millisecond), extraCost.Round(time.Millisecond), truthCost.Round(time.Millisecond))
	fmt.Println("the extrapolated trace predicts the large run's workload for a fraction of the cost (§VI).")
}
