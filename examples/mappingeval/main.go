// Mapping-algorithm evaluation: the paper's §IV-C study.
//
// The prediction framework acts as a test-bed for particle mapping
// strategies: given one trace, it evaluates element-based, bin-based, and
// Hilbert-order mapping side by side — peak workload, resource utilization,
// migration traffic — without implementing any of them inside a parallel
// application.
//
// Run with:
//
//	go run ./examples/mappingeval
package main

import (
	"flag"
	"fmt"
	"log"

	"picpredict"
)

func main() {
	log.SetFlags(0)
	ranks := flag.Int("ranks", 256, "processor count to evaluate at")
	flag.Parse()

	spec := picpredict.HeleShaw().
		WithParticles(6000).
		WithElements(64, 64, 1).
		WithSteps(800).
		WithFilterRadius(0.008)
	fmt.Printf("evaluating mapping algorithms on %s at R=%d\n\n", spec.Name(), *ranks)
	trace, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		mapping  picpredict.MappingKind
		peak     int64
		ghost    int64
		ruMean   float64
		imb      float64
		migTotal int64
	}
	var rows []row
	for _, mapping := range []picpredict.MappingKind{
		picpredict.MappingElement,
		picpredict.MappingBin,
		picpredict.MappingHilbert,
	} {
		opts := picpredict.WorkloadOptions{
			Ranks:        *ranks,
			Mapping:      mapping,
			FilterRadius: spec.FilterRadius(),
		}
		if mapping == picpredict.MappingHilbert {
			// The Hilbert mapper answers no ghost queries; evaluate its
			// computation distribution only.
			opts.FilterRadius = 0
		}
		wl, err := trace.GenerateWorkload(opts)
		if err != nil {
			log.Fatal(err)
		}
		var mig int64
		for _, m := range wl.MigrationsPerFrame() {
			mig += m
		}
		rows = append(rows, row{
			mapping:  mapping,
			peak:     wl.Peak(),
			ghost:    wl.GhostPeak(),
			ruMean:   100 * wl.Utilization().Mean,
			imb:      wl.Imbalance(),
			migTotal: mig,
		})
	}

	fmt.Printf("%10s %8s %8s %10s %11s %12s\n", "mapping", "peak", "ghosts", "RU mean", "imbalance", "migrations")
	for _, r := range rows {
		fmt.Printf("%10s %8d %8d %9.1f%% %11.1f %12d\n",
			r.mapping, r.peak, r.ghost, r.ruMean, r.imb, r.migTotal)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  element — perfect locality, catastrophic peak for a clustered bed (paper Fig 8)")
	fmt.Println("  bin     — near-balanced counts, ghost traffic pays for decoupled locality (paper §III-C)")
	fmt.Println("  hilbert — exact count balance with approximate locality (paper ref [10])")
}
