// Quickstart: the minimal end-to-end use of the prediction framework.
//
// It runs a small Hele-Shaw PIC simulation to obtain a particle trace, then
// uses the Dynamic Workload Generator to predict — without any further
// simulation — how the particle workload distributes across 64 and 256
// processors under both mapping algorithms.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"picpredict"
)

func main() {
	log.SetFlags(0)

	// 1. Define the application scenario: a scaled-down Hele-Shaw case
	//    study (dense particle bed dispersed by a shock).
	spec := picpredict.HeleShaw().
		WithParticles(5000).
		WithElements(64, 64, 1).
		WithSteps(600).
		WithSampleEvery(100)
	fmt.Printf("scenario %s: %d particles on %d spectral elements\n",
		spec.Name(), spec.NumParticles(), spec.NumElements())

	// 2. Run the PIC application once and sample a particle trace.
	trace, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d frames sampled every %d iterations\n\n", trace.Frames(), trace.SampleEvery())

	// 3. Generate workloads for several system sizes from that ONE trace —
	//    no re-simulation needed, because particle movement is independent
	//    of the processor count.
	fmt.Printf("%8s %10s %16s %16s %12s\n", "R", "mapping", "peak particles", "RU (mean)", "imbalance")
	for _, ranks := range []int{64, 256} {
		for _, mapping := range []picpredict.MappingKind{picpredict.MappingElement, picpredict.MappingBin} {
			wl, err := trace.GenerateWorkload(picpredict.WorkloadOptions{
				Ranks:        ranks,
				Mapping:      mapping,
				FilterRadius: spec.FilterRadius(),
			})
			if err != nil {
				log.Fatal(err)
			}
			u := wl.Utilization()
			fmt.Printf("%8d %10s %16d %15.1f%% %12.1f\n",
				ranks, mapping, wl.Peak(), 100*u.Mean, wl.Imbalance())
		}
	}

	// 4. Visualise how the irregular workload evolves (Fig 1a style).
	fmt.Println("\nworkload heat map (element mapping, 64 ranks):")
	wl, err := trace.GenerateWorkload(picpredict.WorkloadOptions{
		Ranks:   64,
		Mapping: picpredict.MappingElement,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := wl.RenderHeatmap(os.Stdout, 16, 48); err != nil {
		log.Fatal(err)
	}
}
