package picpredict

import (
	"errors"
	"fmt"
	"io"

	"picpredict/internal/extrapolate"
	"picpredict/internal/geom"
	"picpredict/internal/trace"
)

// Trace is a particle trace: positions of every particle sampled at fixed
// iteration intervals. A trace is independent of the processor count, so
// one trace predicts workload for any system size (§II).
type Trace struct {
	domain      geom.AABB
	np          int
	sampleEvery int
	iterations  []int
	positions   []geom.Vec3 // frame-major
	mesh        meshParams
}

// ReadTrace parses a binary trace stream written by Scenario.WriteTrace,
// Trace.Write/WriteCompressed, or cmd/picgen; gzip-compressed traces are
// detected and decompressed transparently, and both the checksummed v2 and
// legacy v1 layouts are accepted. Element-based mapping additionally needs
// the element grid the application ran on; pass it via WithMesh after
// reading. Any damage fails the read; use ReadTraceSalvaged to keep the
// intact prefix of a torn trace instead.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr, salvage, err := ReadTraceSalvaged(r)
	if err != nil {
		return nil, err
	}
	if salvage != nil {
		return nil, fmt.Errorf("picpredict: %w", salvage.Damage)
	}
	return tr, nil
}

// Salvage reports damage tolerated while reading an artefact: how much was
// recovered before the damage, and the typed error
// (*resilience.CorruptFrameError, *resilience.TruncatedError) describing
// it.
type Salvage struct {
	// Recovered is the number of intact frames (trace) or intervals
	// (workload) read before the damage.
	Recovered int
	// Damage is the error that ended reading.
	Damage error
}

// ReadTraceSalvaged parses a trace, tolerating a damaged tail: the torn or
// corrupt suffix a crash, full disk, or flipped bit leaves behind. It
// returns the intact prefix plus a non-nil *Salvage describing the damage
// (nil when the trace is whole). The error is non-nil only when nothing
// usable could be read.
func ReadTraceSalvaged(r io.Reader) (*Trace, *Salvage, error) {
	tr, err := trace.OpenReader(r)
	if err != nil {
		return nil, nil, fmt.Errorf("picpredict: %w", err)
	}
	h := tr.Header()
	its, pos, damage := tr.ReadAllSalvaged()
	if len(its) == 0 {
		if damage != nil {
			return nil, nil, fmt.Errorf("picpredict: no intact frames: %w", damage)
		}
		return nil, nil, errors.New("picpredict: trace contains no frames")
	}
	out := &Trace{
		domain:      h.Domain,
		np:          h.NumParticles,
		sampleEvery: h.SampleEvery,
		iterations:  its,
		positions:   pos,
	}
	if damage != nil {
		return out, &Salvage{Recovered: len(its), Damage: fmt.Errorf("picpredict: %w", damage)}, nil
	}
	return out, nil, nil
}

// NewTraceFromFrames builds an in-memory trace from raw frame data:
// positions holds len(iterations)×np particle coordinates, frame-major.
// It is the programmatic analogue of ReadTrace — synthetic populations,
// externally-sourced traces, and benchmarks feed the Dynamic Workload
// Generator without a simulation run or an artefact file. Element-based
// mapping additionally needs WithMesh, exactly as for a file trace.
func NewTraceFromFrames(domain [2][3]float64, np, sampleEvery int, iterations []int, positions [][3]float64) (*Trace, error) {
	if np <= 0 {
		return nil, fmt.Errorf("picpredict: trace needs a positive particle count, got %d", np)
	}
	if sampleEvery <= 0 {
		return nil, fmt.Errorf("picpredict: trace needs a positive sampling interval, got %d", sampleEvery)
	}
	if len(iterations) == 0 {
		return nil, errors.New("picpredict: trace needs at least one frame")
	}
	if len(positions) != np*len(iterations) {
		return nil, fmt.Errorf("picpredict: %d frames of %d particles need %d positions, got %d",
			len(iterations), np, np*len(iterations), len(positions))
	}
	lo := geom.V(domain[0][0], domain[0][1], domain[0][2])
	hi := geom.V(domain[1][0], domain[1][1], domain[1][2])
	if !(lo.X < hi.X && lo.Y < hi.Y && lo.Z <= hi.Z) {
		return nil, fmt.Errorf("picpredict: degenerate trace domain %v", domain)
	}
	pos := make([]geom.Vec3, len(positions))
	for i, p := range positions {
		pos[i] = geom.V(p[0], p[1], p[2])
	}
	return &Trace{
		domain:      geom.Box(lo, hi),
		np:          np,
		sampleEvery: sampleEvery,
		iterations:  append([]int(nil), iterations...),
		positions:   pos,
	}, nil
}

// WithMesh attaches the spectral-element grid (ex×ey×ez elements, n³ grid
// points each) the application ran on — required for element-based and
// Hilbert mapping of a trace loaded with ReadTrace.
func (t *Trace) WithMesh(ex, ey, ez, n int) *Trace {
	t.mesh = meshParams{elements: [3]int{ex, ey, ez}, n: n}
	return t
}

// Mesh returns the attached spectral-element grid and per-element
// resolution; ok is false when the trace carries no mesh (a trace loaded
// with ReadTrace before WithMesh), in which case only bin mapping works.
func (t *Trace) Mesh() (elements [3]int, n int, ok bool) {
	return t.mesh.elements, t.mesh.n, t.mesh.elements != [3]int{}
}

// NumParticles returns N_p.
func (t *Trace) NumParticles() int { return t.np }

// Frames returns the number of sampled frames.
func (t *Trace) Frames() int { return len(t.iterations) }

// SampleEvery returns the iteration distance between frames.
func (t *Trace) SampleEvery() int { return t.sampleEvery }

// Iterations returns the application iteration of every frame.
func (t *Trace) Iterations() []int { return t.iterations }

// Domain returns the computational domain as {lo, hi} corner triples.
func (t *Trace) Domain() [2][3]float64 { return domainOf(t.domain) }

// Write streams the trace to w in the binary trace format.
func (t *Trace) Write(w io.Writer) error {
	tw, err := trace.NewWriter(w, trace.Header{
		NumParticles: t.np,
		SampleEvery:  t.sampleEvery,
		Domain:       t.domain,
	})
	if err != nil {
		return fmt.Errorf("picpredict: %w", err)
	}
	for k, it := range t.iterations {
		if err := tw.WriteFrame(it, t.frame(k)); err != nil {
			return fmt.Errorf("picpredict: %w", err)
		}
	}
	return tw.Flush()
}

// Downsample returns a trace keeping every keep-th frame (starting with
// frame 0). §II-D discusses the trade-off: lower sampling frequency shrinks
// the file but blurs particle movement — Downsample lets users quantify
// that loss by comparing workloads generated from both rates.
func (t *Trace) Downsample(keep int) (*Trace, error) {
	if keep < 1 {
		return nil, fmt.Errorf("picpredict: downsample factor %d < 1", keep)
	}
	out := &Trace{
		domain:      t.domain,
		np:          t.np,
		sampleEvery: t.sampleEvery * keep,
		mesh:        t.mesh,
	}
	for k := 0; k < t.Frames(); k += keep {
		out.iterations = append(out.iterations, t.iterations[k])
		out.positions = append(out.positions, t.frame(k)...)
	}
	return out, nil
}

// WriteCompressed streams the trace to w gzip-compressed — §II-D notes
// full-scale trace files reach hundreds of gigabytes, and positions
// compress well. ReadTrace decompresses transparently.
func (t *Trace) WriteCompressed(w io.Writer) error {
	cw, err := trace.NewCompressedWriter(w, trace.Header{
		NumParticles: t.np,
		SampleEvery:  t.sampleEvery,
		Domain:       t.domain,
	})
	if err != nil {
		return fmt.Errorf("picpredict: %w", err)
	}
	for k, it := range t.iterations {
		if err := cw.WriteFrame(it, t.frame(k)); err != nil {
			return fmt.Errorf("picpredict: %w", err)
		}
	}
	return cw.Close()
}

// frame returns the positions of frame k (internal view).
func (t *Trace) frame(k int) []geom.Vec3 {
	return t.positions[k*t.np : (k+1)*t.np]
}

// ParticleBounds returns the tight bounding box of the particles at frame
// k — the "particle boundary" bin-based mapping partitions.
func (t *Trace) ParticleBounds(k int) [2][3]float64 {
	return domainOf(geom.BoundingBox(t.frame(k)))
}

// Extrapolate synthesises a trace with factor× the particles from this one
// (the paper's §VI trace-extrapolation extension): each synthetic particle
// shadows a donor trajectory with a fixed spatial jitter scaled to the
// local inter-particle spacing, so the large-population workload
// distribution can be predicted from a cheap low-fidelity run. The result
// shares this trace's domain, mesh and sampling metadata.
func (t *Trace) Extrapolate(factor int, seed int64) (*Trace, error) {
	out, err := extrapolate.Frames(t.positions, t.np, extrapolate.Options{
		Factor: factor,
		Seed:   seed,
		Clamp:  t.domain,
	})
	if err != nil {
		return nil, fmt.Errorf("picpredict: %w", err)
	}
	return &Trace{
		domain:      t.domain,
		np:          t.np * factor,
		sampleEvery: t.sampleEvery,
		iterations:  t.iterations,
		positions:   out,
		mesh:        t.mesh,
	}, nil
}
