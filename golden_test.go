package picpredict

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"picpredict/internal/obs"
	"picpredict/internal/resilience"
)

var updateGolden = flag.Bool("update", false, "regenerate the committed golden fixture under testdata/golden")

// goldenScenario is the fixture's configuration: tiny, fully seeded, and
// frozen — changing it requires regenerating the fixture with -update.
func goldenScenario() Scenario {
	return HeleShaw().WithParticles(200).WithSteps(40).WithSampleEvery(10)
}

var goldenRanks = []int{8, 16}

// goldenExpect is the committed record of the fixture run: the trace
// artefact's checksum and the per-rank predicted totals, stored as
// math.Float64bits hex so the comparison is bit-for-bit rather than
// tolerance-based.
type goldenExpect struct {
	Frames     int               `json:"frames"`
	TraceCRC   string            `json:"trace_crc32c"`
	Ranks      []int             `json:"ranks"`
	TotalsBits map[string]string `json:"totals_bits"`
}

func goldenDir() string { return filepath.Join("testdata", "golden") }

func totalBits(total float64) string {
	return fmt.Sprintf("0x%016x", math.Float64bits(total))
}

// goldenFileFlow runs trace-at-rest prediction over the committed trace and
// returns the per-rank predicted totals.
func goldenFileFlow(t *testing.T, tr *Trace) []float64 {
	t.Helper()
	models, err := TrainModels(TrainOptions{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	q := QuartzMachine()
	platform, err := NewPlatform(models, PlatformOptions{
		TotalElements: 16384, N: 4, Filter: 1, Machine: &q,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := goldenScenario()
	totals := make([]float64, len(goldenRanks))
	for i, ranks := range goldenRanks {
		wl, err := tr.GenerateWorkload(WorkloadOptions{
			Ranks:        ranks,
			Mapping:      MappingBin,
			FilterRadius: sc.FilterRadius(),
		})
		if err != nil {
			t.Fatal(err)
		}
		pred, err := platform.SimulateBSP(wl)
		if err != nil {
			t.Fatal(err)
		}
		totals[i] = pred.Total
	}
	return totals
}

// TestGoldenEndToEnd locks the whole framework to a committed fixture: the
// tiny deterministic trace under testdata/golden must reproduce the
// committed per-rank predicted totals bit-for-bit through BOTH the
// file-at-rest flow (ReadTrace → GenerateWorkload → SimulateBSP) and the
// fused pipeline. Any drift in the simulation, quantisation, mapping,
// training, or simulator arithmetic fails this test; run with -update to
// regenerate the fixture after an intentional change.
func TestGoldenEndToEnd(t *testing.T) {
	tracePath := filepath.Join(goldenDir(), "trace.bin")
	expectPath := filepath.Join(goldenDir(), "expect.json")

	if *updateGolden {
		regenerateGolden(t, tracePath, expectPath)
	}

	raw, err := os.ReadFile(expectPath)
	if err != nil {
		t.Fatalf("reading golden expectations (regenerate with -update): %v", err)
	}
	var want goldenExpect
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	// The trace artefact itself must be byte-identical to the committed one.
	art, err := obs.FileArtefact(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if art.CRC32C != want.TraceCRC {
		t.Fatalf("golden trace checksum %s, committed %s — the fixture file changed", art.CRC32C, want.TraceCRC)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Frames() != want.Frames {
		t.Fatalf("golden trace has %d frames, committed %d", tr.Frames(), want.Frames)
	}

	fileTotals := goldenFileFlow(t, tr)
	for i, ranks := range goldenRanks {
		key := strconv.Itoa(ranks)
		if got := totalBits(fileTotals[i]); got != want.TotalsBits[key] {
			t.Errorf("file flow R=%d: total %s (%g), committed %s", ranks, got, fileTotals[i], want.TotalsBits[key])
		}
	}

	// The fused pipeline must land on the same bits (it quantises positions
	// through the trace format exactly like the file round-trip).
	res, err := RunFused(context.Background(), goldenScenario(), FusedOptions{
		Ranks:         goldenRanks,
		Train:         TrainOptions{Seed: 1, Fast: true},
		TotalElements: 16384,
		GridN:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != want.Frames {
		t.Errorf("fused run streamed %d frames, committed %d", res.Frames, want.Frames)
	}
	for i, ranks := range goldenRanks {
		key := strconv.Itoa(ranks)
		if got := totalBits(res.Predictions[i].Total); got != want.TotalsBits[key] {
			t.Errorf("fused R=%d: total %s (%g), committed %s", ranks, got, res.Predictions[i].Total, want.TotalsBits[key])
		}
	}
}

// regenerateGolden rewrites the fixture: the trace from the frozen scenario
// and the expectations from the file flow over it.
func regenerateGolden(t *testing.T, tracePath, expectPath string) {
	t.Helper()
	if err := os.MkdirAll(goldenDir(), 0o755); err != nil {
		t.Fatal(err)
	}
	sc := goldenScenario()
	if err := resilience.WriteFileAtomic(tracePath, sc.WriteTrace); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	totals := goldenFileFlow(t, tr)
	art, err := obs.FileArtefact(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenExpect{
		Frames:     tr.Frames(),
		TraceCRC:   art.CRC32C,
		Ranks:      goldenRanks,
		TotalsBits: map[string]string{},
	}
	for i, ranks := range goldenRanks {
		want.TotalsBits[strconv.Itoa(ranks)] = totalBits(totals[i])
	}
	raw, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(expectPath, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("golden fixture regenerated: %s, %s", tracePath, expectPath)
}
