// Command predict runs the full prediction pipeline end-to-end: it reads a
// particle trace, trains kernel performance models (Model Generator),
// synthesises workloads at one or more processor counts (Dynamic Workload
// Generator), and replays them through the system-level simulator
// (Simulation Platform), reporting predicted execution time and model
// accuracy per configuration.
//
// Usage:
//
//	predict -trace trace.bin -ranks 1044,2088,4176,8352 -filter 0.00428 -total-elements 16384 -n 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"picpredict"
	"picpredict/internal/cli"
	"picpredict/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("predict: ")

	var (
		traceFile = flag.String("trace", "", "input particle trace (this or -workload is required)")
		wlFile    = flag.String("workload", "", "pre-generated workload file (wlgen -save); skips workload generation")
		ranksCSV  = flag.String("ranks", "1044,2088,4176,8352", "processor counts, comma separated")
		mappingF  = flag.String("mapping", "bin", "mapping algorithm: element, bin, hilbert")
		filter    = flag.Float64("filter", 0.00428, "projection filter size")
		workers   = flag.Int("workers", 0, "parallel workload-fill workers (0 serial)")
		totalEl   = flag.Int("total-elements", 16384, "total spectral elements of the application")
		gridN     = flag.Float64("n", 4, "grid resolution per element")
		filterEl  = flag.Float64("filter-elements", 0, "filter size in element widths (default derived)")
		machine   = flag.String("machine", "quartz", "target system: quartz, vulcan, titan")
		noise     = flag.Float64("noise", 0.105, "synthetic testbed noise for accuracy evaluation")
		fast      = flag.Bool("fast", false, "fast (less accurate) model training")
		wallclock = flag.Bool("wallclock", false, "train models against wall-clock kernel executions")

		metricsPath = flag.String("metrics", "", "write a JSON run manifest (timings, counters, artefact checksums) to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *traceFile == "" && *wlFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	ranksList, err := cli.ParseRanks(*ranksCSV)
	if err != nil {
		log.Fatal(err)
	}
	if err := cli.Positive("-total-elements", *totalEl); err != nil {
		log.Fatal(err)
	}
	if err := cli.NonNegative("-filter", *filter); err != nil {
		log.Fatal(err)
	}

	ctx, stop := cli.Context()
	defer stop()

	run, err := cli.StartRun("predict", *metricsPath, *pprofAddr, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	ctx = obs.With(ctx, run.Reg)
	run.SetConfig(map[string]any{
		"trace": *traceFile, "workload": *wlFile, "ranks": *ranksCSV,
		"mapping": *mappingF, "filter": *filter, "workers": *workers,
		"total_elements": *totalEl, "n": *gridN, "filter_elements": *filterEl,
		"machine": *machine, "noise": *noise, "fast": *fast, "wallclock": *wallclock,
	})

	var tr *picpredict.Trace
	var savedWl *picpredict.Workload
	if *wlFile != "" {
		savedWl, err = cli.OpenWorkload(*wlFile)
		if err != nil {
			log.Fatal(err)
		}
		ranksList = []int{savedWl.Ranks()}
		fmt.Printf("workload: R=%d, %d frames\n", savedWl.Ranks(), savedWl.Frames())
	} else {
		tr, err = cli.OpenTrace(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d particles, %d frames\n", tr.NumParticles(), tr.Frames())
	}
	run.Reg.StageDone("load-input")

	fmt.Println("training kernel performance models (Model Generator)...")
	models, err := picpredict.TrainModels(picpredict.TrainOptions{
		Seed: 1, Fast: *fast, WallClock: *wallclock,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range models.Formulas() {
		fmt.Println("  ", s)
	}
	run.Reg.StageDone("train")

	fe := *filterEl
	if fe == 0 {
		// Default the model-space filter size to one element width; pass
		// -filter-elements to match the application configuration exactly.
		fe = 1
	}
	mspec, err := picpredict.MachineByName(*machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target system: %s (latency %.2g s, bandwidth %.3g B/s)\n",
		mspec.Name, mspec.LatencySec, mspec.BandwidthBps)
	platform, err := picpredict.NewPlatform(models, picpredict.PlatformOptions{
		TotalElements: *totalEl,
		N:             *gridN,
		Filter:        fe,
		Machine:       &mspec,
		Obs:           run.Reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%8s %14s %14s %14s %10s\n", "R", "predicted (s)", "compute (s)", "comm (s)", "MAPE")
	for i, ranks := range ranksList {
		if ctx.Err() != nil {
			log.Fatal("interrupted")
		}
		wl := savedWl
		if wl == nil {
			wl, err = tr.GenerateWorkloadContext(ctx, picpredict.WorkloadOptions{
				Ranks:        ranks,
				Mapping:      picpredict.MappingKind(*mappingF),
				FilterRadius: *filter,
				Workers:      *workers,
			})
			if err != nil {
				if ctx.Err() != nil {
					log.Fatal("interrupted")
				}
				log.Fatal(err)
			}
		}
		pred, err := platform.SimulateBSP(wl)
		if err != nil {
			log.Fatal(err)
		}
		var comp, comm float64
		for k := range pred.Compute {
			comp += pred.Compute[k]
			comm += pred.Comm[k]
		}
		acc, err := platform.KernelAccuracy(wl, *noise, int64(7+i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %14.5g %14.5g %14.5g %9.2f%%\n",
			ranks, pred.Total, comp, comm, picpredict.MeanAccuracy(acc))
	}
	run.Reg.StageDone("predict")
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
}
