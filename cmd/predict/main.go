// Command predict runs the full prediction pipeline end-to-end: it reads a
// particle trace, trains kernel performance models (Model Generator),
// synthesises workloads at one or more processor counts (Dynamic Workload
// Generator), and replays them through the system-level simulator
// (Simulation Platform), reporting predicted execution time and model
// accuracy per configuration.
//
// Usage:
//
//	predict -trace trace.bin -ranks 1044,2088,4176,8352 -filter 0.00428 -total-elements 16384 -n 4
//
// Element/hilbert mapping straight from a trace file needs the element grid
// the application ran on (-elements ex,ey,ez; picgen prints the exact
// values), and a -rebalance policy rides on element mapping:
//
//	predict -trace trace.bin -mapping element -elements 128,128,1 -rebalance threshold:1.5
//
// -sweep switches to capacity-planning mode: instead of one configuration
// per rank count, it prices a whole (ranks × mapping × machine × model-kind)
// grid through the sweep engine — sharing one workload build per rank count —
// and reports the ranked frontier, the fastest configuration, and the
// cost/performance knee:
//
//	predict -trace trace.bin -sweep -sweep-ranks 1044-8352:x2 -machines quartz,vulcan -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"picpredict"
	"picpredict/internal/cli"
	"picpredict/internal/obs"
	"picpredict/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("predict: ")

	var (
		traceFile = flag.String("trace", "", "input particle trace (this or -workload is required)")
		wlFile    = flag.String("workload", "", "pre-generated workload file (wlgen -save); skips workload generation")
		ranksCSV  = flag.String("ranks", "1044,2088,4176,8352", "processor counts, comma separated")
		mappingF  = flag.String("mapping", "bin", "mapping algorithm: element, bin, hilbert")
		rebalF    = flag.String("rebalance", "", "dynamic load-balancing policy: none, periodic:K, threshold:F, diffusion:F[/R] (element mapping only)")
		elementsF = flag.String("elements", "", "application element grid ex,ey,ez — required for element/hilbert mapping straight from a -trace file (picgen prints the exact values)")
		filter    = flag.Float64("filter", 0.00428, "projection filter size")
		workers   = flag.Int("workers", 0, "parallel workload-fill workers (0 serial)")
		totalEl   = flag.Int("total-elements", 16384, "total spectral elements of the application")
		gridN     = flag.Float64("n", 4, "grid resolution per element")
		filterEl  = flag.Float64("filter-elements", 0, "filter size in element widths (default derived)")
		machine   = flag.String("machine", "quartz", "target system: quartz, vulcan, titan")
		noise     = flag.Float64("noise", 0.105, "synthetic testbed noise for accuracy evaluation")
		fast      = flag.Bool("fast", false, "fast (less accurate) model training")
		wallclock = flag.Bool("wallclock", false, "train models against wall-clock kernel executions")

		sweepMode  = flag.Bool("sweep", false, "capacity-planning mode: price a configuration grid over -trace and report the ranked frontier")
		sweepRanks = flag.String("sweep-ranks", "1044-8352:x2", "sweep rank-axis grid spec: INT or LO-HI[:xK|:+K], comma separated")
		mappingsF  = flag.String("mappings", "bin", "sweep mapping axis, comma separated")
		rebalsF    = flag.String("rebalances", "none", "sweep rebalance axis, comma separated (non-none entries price only element-mapping configurations)")
		machinesF  = flag.String("machines", "quartz", "sweep machine axis, comma separated")
		kindsF     = flag.String("model-kinds", "synthetic", "sweep model-kind axis: synthetic, wallclock, app")
		costWeight = flag.Float64("cost-weight", 1, "sweep knee objective's cost weight (higher favours fewer ranks)")
		topN       = flag.Int("top", 10, "sweep frontier rows to report")
		jsonOut    = flag.Bool("json", false, "emit the sweep report as JSON")
		sweepWkrs  = flag.Int("sweep-workers", 0, "sweep evaluation workers (0 takes the engine default)")

		metricsPath = flag.String("metrics", "", "write a JSON run manifest (timings, counters, artefact checksums) to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *traceFile == "" && *wlFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	ranksList, err := cli.ParseRanks(*ranksCSV)
	if err != nil {
		log.Fatal(err)
	}
	if err := cli.Positive("-total-elements", *totalEl); err != nil {
		log.Fatal(err)
	}
	if err := cli.NonNegative("-filter", *filter); err != nil {
		log.Fatal(err)
	}
	rebal, err := cli.ParseRebalance("-rebalance", *rebalF)
	if err != nil {
		log.Fatal(err)
	}
	if rebal != "" && rebal != "none" && *mappingF != "element" {
		log.Fatalf("-rebalance %s requires -mapping element, got %q", rebal, *mappingF)
	}
	if *wlFile != "" && *rebalF != "" {
		log.Fatal("-rebalance is baked into a -workload artefact at wlgen time; omit it on replay")
	}
	// An element grid on the command line attaches the mesh a file-loaded
	// trace lacks; element/hilbert mapping (and so any -rebalance policy)
	// needs it when predicting straight from -trace.
	var meshDims [3]int
	if *elementsF != "" {
		meshDims, err = cli.ParseElements(*elementsF)
		if err != nil {
			log.Fatal(err)
		}
		if *gridN < 1 {
			log.Fatalf("-n must be at least 1 with -elements, got %g", *gridN)
		}
	}

	// Sweep-mode grid flags, validated up front so a typo fails before any
	// trace load or training run.
	var grid sweep.Grid
	if *sweepMode {
		if *traceFile == "" {
			log.Fatal("-sweep requires -trace (a sweep generates one workload per rank count)")
		}
		if *wlFile != "" {
			log.Fatal("-sweep prices many rank counts; it cannot replay a single pre-generated -workload")
		}
		if *wallclock {
			log.Fatal("-wallclock does not apply to -sweep; add wallclock to -model-kinds instead")
		}
		grid.Ranks, err = sweep.ParseRanks(*sweepRanks)
		if err != nil {
			log.Fatalf("-sweep-ranks: %v", err)
		}
		grid.Mappings, err = cli.ParseMappings("-mappings", *mappingsF)
		if err != nil {
			log.Fatal(err)
		}
		grid.Rebalances, err = cli.ParseRebalances("-rebalances", *rebalsF)
		if err != nil {
			log.Fatal(err)
		}
		grid.Machines, err = cli.ParseMachines("-machines", *machinesF)
		if err != nil {
			log.Fatal(err)
		}
		grid.Kinds, err = cli.ParseModelKinds("-model-kinds", *kindsF)
		if err != nil {
			log.Fatal(err)
		}
		if err := cli.NonNegative("-cost-weight", *costWeight); err != nil {
			log.Fatal(err)
		}
		if *topN < 0 {
			log.Fatalf("-top must not be negative, got %d", *topN)
		}
	}

	ctx, stop := cli.Context()
	defer stop()

	run, err := cli.StartRun("predict", *metricsPath, *pprofAddr, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	ctx = obs.With(ctx, run.Reg)
	run.SetConfig(map[string]any{
		"trace": *traceFile, "workload": *wlFile, "ranks": *ranksCSV,
		"mapping": *mappingF, "rebalance": rebal, "filter": *filter, "workers": *workers,
		"total_elements": *totalEl, "n": *gridN, "filter_elements": *filterEl,
		"machine": *machine, "noise": *noise, "fast": *fast, "wallclock": *wallclock,
		"sweep": *sweepMode, "sweep_ranks": *sweepRanks, "mappings": *mappingsF,
		"rebalances": *rebalsF,
		"machines":   *machinesF, "model_kinds": *kindsF,
		"cost_weight": *costWeight, "top": *topN,
	})

	if *sweepMode {
		runSweep(ctx, run, grid, sweepArgs{
			traceFile: *traceFile, filter: *filter, filterEl: *filterEl,
			totalEl: *totalEl, gridN: *gridN,
			elements: *elementsF, meshDims: meshDims,
			workers: *workers, sweepWorkers: *sweepWkrs,
			costWeight: *costWeight, top: *topN,
			fast: *fast, jsonOut: *jsonOut,
		})
		return
	}

	var tr *picpredict.Trace
	var savedWl *picpredict.Workload
	if *wlFile != "" {
		savedWl, err = cli.OpenWorkload(*wlFile)
		if err != nil {
			log.Fatal(err)
		}
		ranksList = []int{savedWl.Ranks()}
		fmt.Printf("workload: R=%d, %d frames\n", savedWl.Ranks(), savedWl.Frames())
	} else {
		tr, err = cli.OpenTrace(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if *elementsF != "" {
			tr.WithMesh(meshDims[0], meshDims[1], meshDims[2], int(*gridN))
		}
		fmt.Printf("trace: %d particles, %d frames\n", tr.NumParticles(), tr.Frames())
	}
	run.Reg.StageDone("load-input")

	fmt.Println("training kernel performance models (Model Generator)...")
	models, err := picpredict.TrainModels(picpredict.TrainOptions{
		Seed: 1, Fast: *fast, WallClock: *wallclock,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range models.Formulas() {
		fmt.Println("  ", s)
	}
	run.Reg.StageDone("train")

	fe := *filterEl
	if fe == 0 {
		// Default the model-space filter size to one element width; pass
		// -filter-elements to match the application configuration exactly.
		fe = 1
	}
	mspec, err := picpredict.MachineByName(*machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target system: %s (latency %.2g s, bandwidth %.3g B/s)\n",
		mspec.Name, mspec.LatencySec, mspec.BandwidthBps)
	platform, err := picpredict.NewPlatform(models, picpredict.PlatformOptions{
		TotalElements: *totalEl,
		N:             *gridN,
		Filter:        fe,
		Machine:       &mspec,
		Obs:           run.Reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The migration column only appears when a rebalance policy is active —
	// static runs keep the historical four-column table. A replayed workload
	// carries its policy's migrations baked in, so the artefact decides.
	withMig := rebal != "" && rebal != "none"
	if savedWl != nil {
		withMig = savedWl.MigrationEpochs() > 0
	}
	if withMig {
		fmt.Printf("\n%8s %14s %14s %14s %14s %7s %10s\n",
			"R", "predicted (s)", "compute (s)", "comm (s)", "migration (s)", "epochs", "MAPE")
	} else {
		fmt.Printf("\n%8s %14s %14s %14s %10s\n", "R", "predicted (s)", "compute (s)", "comm (s)", "MAPE")
	}
	for i, ranks := range ranksList {
		if ctx.Err() != nil {
			log.Fatal("interrupted")
		}
		wl := savedWl
		if wl == nil {
			wl, err = tr.GenerateWorkloadContext(ctx, picpredict.WorkloadOptions{
				Ranks:        ranks,
				Mapping:      picpredict.MappingKind(*mappingF),
				Rebalance:    rebal,
				FilterRadius: *filter,
				Workers:      *workers,
			})
			if err != nil {
				if ctx.Err() != nil {
					log.Fatal("interrupted")
				}
				log.Fatal(err)
			}
		}
		pred, err := platform.SimulateBSP(wl)
		if err != nil {
			log.Fatal(err)
		}
		var comp, comm float64
		for k := range pred.Compute {
			comp += pred.Compute[k]
			comm += pred.Comm[k]
		}
		acc, err := platform.KernelAccuracy(wl, *noise, int64(7+i))
		if err != nil {
			log.Fatal(err)
		}
		if withMig {
			fmt.Printf("%8d %14.5g %14.5g %14.5g %14.5g %7d %9.2f%%\n",
				ranks, pred.Total, comp, comm, pred.MigrationSec(), wl.MigrationEpochs(),
				picpredict.MeanAccuracy(acc))
		} else {
			fmt.Printf("%8d %14.5g %14.5g %14.5g %9.2f%%\n",
				ranks, pred.Total, comp, comm, picpredict.MeanAccuracy(acc))
		}
	}
	run.Reg.StageDone("predict")
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
}

// sweepArgs carries the -sweep mode's resolved flags into runSweep.
type sweepArgs struct {
	traceFile        string
	filter, filterEl float64
	totalEl          int
	gridN            float64
	elements         string // -elements spec ("" = trace has no mesh)
	meshDims         [3]int // parsed -elements grid
	workers          int    // per-build workload-fill workers
	sweepWorkers     int    // evaluation fan-out (0 = engine default)
	costWeight       float64
	top              int
	fast             bool
	jsonOut          bool
}

// runSweep is the -sweep mode: one engine call over the grid, then either
// the human table or a JSON document on stdout. It exits the process on
// error, like the rest of the command.
func runSweep(ctx context.Context, run *cli.Run, grid sweep.Grid, a sweepArgs) {
	tr, err := cli.OpenTrace(a.traceFile)
	if err != nil {
		log.Fatal(err)
	}
	if a.elements != "" {
		tr.WithMesh(a.meshDims[0], a.meshDims[1], a.meshDims[2], int(a.gridN))
	}
	if !a.jsonOut {
		fmt.Printf("trace: %d particles, %d frames\n", tr.NumParticles(), tr.Frames())
	}
	run.Reg.StageDone("load-input")

	fe := a.filterEl
	if fe == 0 {
		fe = 1 // same default as the point-prediction path
	}
	res, err := sweep.Run(ctx, tr, grid, sweep.Options{
		Filter:         a.filter,
		BuildWorkers:   a.workers,
		Workers:        a.sweepWorkers,
		TotalElements:  a.totalEl,
		GridN:          a.gridN,
		FilterElements: fe,
		CostWeight:     a.costWeight,
		Top:            a.top,
		Obs:            run.Reg,
		Stages:         true,
	}, func(_ context.Context, kind picpredict.ModelKind) (picpredict.Models, error) {
		return picpredict.TrainModelsKind(kind, picpredict.TrainOptions{Seed: 1, Fast: a.fast})
	})
	if err != nil {
		if ctx.Err() != nil {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}

	if a.jsonOut {
		reportSweepJSON(tr, res)
	} else {
		reportSweepTable(res, a.costWeight)
	}
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
}

// reportSweepJSON writes the machine-readable sweep document: the smoke
// harness diffs .sweep.frontier against the serving path's /v1/optimize.
func reportSweepJSON(tr *picpredict.Trace, res *sweep.Result) {
	out := struct {
		Trace struct {
			Particles int `json:"particles"`
			Frames    int `json:"frames"`
		} `json:"trace"`
		Sweep *sweep.Result `json:"sweep"`
	}{Sweep: res}
	out.Trace.Particles = tr.NumParticles()
	out.Trace.Frames = tr.Frames()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

// mappingLabel renders a frontier point's mapping column, folding an active
// rebalance policy into it ("element+periodic:4").
func mappingLabel(p sweep.Point) string {
	if p.Rebalance == "" {
		return string(p.Mapping)
	}
	return string(p.Mapping) + "+" + p.Rebalance
}

// reportSweepTable prints the ranked frontier and the two headline picks.
func reportSweepTable(res *sweep.Result, costWeight float64) {
	fmt.Printf("sweep: %d configurations priced, %d shared workload builds\n\n",
		res.Configs, res.SharedBuilds)
	fmt.Printf("%8s %24s %8s %10s %14s %14s %7s\n",
		"R", "mapping", "machine", "model", "predicted (s)", "cost (R*s)", "util")
	for _, p := range res.Frontier {
		fmt.Printf("%8d %24s %8s %10s %14.5g %14.5g %6.1f%%\n",
			p.Ranks, mappingLabel(p), p.Machine, p.Kind, p.TotalSec, p.CostRankSec, 100*p.MeanUtilization)
	}
	f, k := res.Fastest, res.Knee
	fmt.Printf("\nfastest: R=%-6d %s/%s/%s at %.5g s\n",
		f.Ranks, mappingLabel(f), f.Machine, f.Kind, f.TotalSec)
	fmt.Printf("knee:    R=%-6d %s/%s/%s at %.5g s (score %.4g at cost weight %g)\n",
		k.Ranks, mappingLabel(k), k.Machine, k.Kind, k.TotalSec, res.KneeScore, costWeight)
}
