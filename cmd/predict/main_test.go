package main

import "testing"

func TestParseRanks(t *testing.T) {
	got, err := parseRanks("1044, 2088,4176")
	if err != nil || len(got) != 3 || got[0] != 1044 || got[2] != 4176 {
		t.Errorf("parseRanks = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-5", "abc", "10,x"} {
		if _, err := parseRanks(bad); err == nil {
			t.Errorf("parseRanks(%q) accepted", bad)
		}
	}
}
