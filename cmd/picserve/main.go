// Command picserve is the long-running prediction service: it loads trace
// (and optionally pre-generated workload) artefacts at startup, trains
// kernel performance models on demand — cached in an LRU model registry
// keyed by artefact checksum × training options, with singleflight
// deduplication — and answers prediction queries over HTTP until SIGTERM
// drains it.
//
// Usage:
//
//	picserve -listen :8080 -trace hele-shaw=trace.bin
//
// Endpoints:
//
//	POST /v1/predict   {"ranks":[1044,2088],"mapping":"bin","model":{"fast":true}}
//	POST /v1/optimize  {"ranks":"512-8352:x2","machines":["quartz","vulcan"]} — capacity-planning sweep
//	GET  /v1/models    the model registry's resident entries
//	GET  /healthz      liveness (200 while the process runs)
//	GET  /readyz       readiness (503 until serving and while draining)
//
// Saturation returns 429 with Retry-After; SIGTERM stops accepting,
// finishes in-flight requests, writes the -metrics manifest, and exits 0.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"runtime"
	"time"

	"picpredict/internal/cli"
	"picpredict/internal/obs"
	"picpredict/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("picserve: ")

	var (
		listen    = flag.String("listen", "127.0.0.1:8080", "HTTP listen address (host:port; port 0 picks a free port)")
		traceList = flag.String("trace", "", "comma-separated [name=]path trace artefacts to serve (required)")
		wlList    = flag.String("workload", "", "comma-separated [name=]path workload artefacts (wlgen -save) to serve")

		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent prediction workers")
		queue     = flag.Int("queue", 0, "admitted requests that may wait behind the workers (default 4x workers); beyond that, 429")
		reqTO     = flag.Duration("request-timeout", 60*time.Second, "per-request deadline, queue wait included")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound after SIGTERM")
		modelCap  = flag.Int("models", 8, "model registry capacity (trained model sets held in the LRU)")
		sweepWkrs = flag.Int("sweep-workers", 4, "per-request fan-out width of /v1/optimize sweeps")
		totalEl   = flag.Int("total-elements", 16384, "default total spectral elements for requests that omit it")
		elementsF = flag.String("elements", "", "application element grid ex,ey,ez attached to every loaded trace — required before requests may use element/hilbert mapping or a rebalance policy")
		gridN     = flag.Float64("n", 4, "default grid resolution per element")
		filterEl  = flag.Float64("filter-elements", 1, "default filter size in element widths")
		machineNm = flag.String("machine", "quartz", "default target system: quartz, vulcan, titan")

		metricsPath = flag.String("metrics", "", "write a JSON run manifest (timings, counters, artefact checksums) to this file on drain")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *traceList == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := cli.ParseAddr("-listen", *listen); err != nil {
		log.Fatal(err)
	}
	if err := cli.Positive("-workers", *workers); err != nil {
		log.Fatal(err)
	}
	if err := cli.Positive("-models", *modelCap); err != nil {
		log.Fatal(err)
	}
	if err := cli.Positive("-sweep-workers", *sweepWkrs); err != nil {
		log.Fatal(err)
	}
	if err := cli.PositiveDuration("-request-timeout", *reqTO); err != nil {
		log.Fatal(err)
	}
	if err := cli.PositiveDuration("-drain-timeout", *drainTO); err != nil {
		log.Fatal(err)
	}
	traces, err := cli.ParseNamedPaths("-trace", *traceList)
	if err != nil {
		log.Fatal(err)
	}
	var meshDims [3]int
	if *elementsF != "" {
		meshDims, err = cli.ParseElements(*elementsF)
		if err != nil {
			log.Fatal(err)
		}
		if *gridN < 1 {
			log.Fatalf("-n must be at least 1 with -elements, got %g", *gridN)
		}
	}

	ctx, stop := cli.Context()
	defer stop()

	run, err := cli.StartRun("picserve", *metricsPath, *pprofAddr, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(serve.Config{
		Workers:        *workers,
		Queue:          *queue,
		RequestTimeout: *reqTO,
		DrainTimeout:   *drainTO,
		ModelCapacity:  *modelCap,
		SweepWorkers:   *sweepWkrs,
		TotalElements:  *totalEl,
		GridN:          *gridN,
		FilterElements: *filterEl,
		Machine:        *machineNm,
		Obs:            run.Reg,
	})
	// instance_id tags the manifest with the same token that prefixes
	// generated X-Request-IDs, so gate→shard traffic correlates to this
	// run's manifest.
	run.SetConfig(map[string]any{
		"listen": *listen, "trace": *traceList, "workload": *wlList,
		"workers": *workers, "queue": *queue,
		"request_timeout": reqTO.String(), "drain_timeout": drainTO.String(),
		"models": *modelCap, "sweep_workers": *sweepWkrs,
		"total_elements": *totalEl, "elements": *elementsF, "n": *gridN,
		"filter_elements": *filterEl, "machine": *machineNm,
		"instance_id": srv.Instance(),
	})
	for _, np := range traces {
		tr, err := cli.OpenTrace(np.Path)
		if err != nil {
			log.Fatalf("-trace %s: %v", np.Path, err)
		}
		if *elementsF != "" {
			tr.WithMesh(meshDims[0], meshDims[1], meshDims[2], int(*gridN))
		}
		art, err := obs.FileArtefact(np.Path)
		if err != nil {
			log.Fatalf("-trace %s: %v", np.Path, err)
		}
		if err := srv.AddTrace(np.Name, tr, art.CRC32C); err != nil {
			log.Fatal(err)
		}
		run.Artefact(np.Path)
		log.Printf("loaded trace %q: %d particles, %d frames (crc %s)",
			np.Name, tr.NumParticles(), tr.Frames(), art.CRC32C)
	}
	if *wlList != "" {
		wls, err := cli.ParseNamedPaths("-workload", *wlList)
		if err != nil {
			log.Fatal(err)
		}
		for _, np := range wls {
			wl, err := cli.OpenWorkload(np.Path)
			if err != nil {
				log.Fatalf("-workload %s: %v", np.Path, err)
			}
			art, err := obs.FileArtefact(np.Path)
			if err != nil {
				log.Fatalf("-workload %s: %v", np.Path, err)
			}
			if err := srv.AddWorkload(np.Name, wl, art.CRC32C); err != nil {
				log.Fatal(err)
			}
			run.Artefact(np.Path)
			log.Printf("loaded workload %q: R=%d, %d intervals (crc %s)",
				np.Name, wl.Ranks(), wl.Frames(), art.CRC32C)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("-listen: %v", err)
	}
	// The smoke harness greps this line for the bound address (port 0 runs).
	log.Printf("serving on http://%s (instance %s, predict at /v1/predict, readiness at /readyz)",
		ln.Addr(), srv.Instance())
	run.Reg.StageDone("startup")

	if err := srv.Serve(ctx, ln); err != nil {
		// A failed drain still flushes the manifest: partial evidence
		// beats none.
		finishErr := run.Finish()
		log.Print(err)
		if finishErr != nil {
			log.Print(finishErr)
		}
		os.Exit(1)
	}
	run.Reg.StageDone("serve")
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}
