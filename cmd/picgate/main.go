// Command picgate is the fault-tolerant serving coordinator: it
// consistent-hashes prediction requests across a fleet of picserve shards
// with health-checked membership, budgeted retries, tail-latency hedging,
// and per-backend circuit breakers — and degrades to structured 503s
// instead of hanging when shards die.
//
// Usage:
//
//	picgate -listen :8070 -backends 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//	picgate -config gate.json
//
// Endpoints:
//
//	POST /v1/predict      routed to the key's owning shard (see README)
//	POST /v1/optimize     capacity-planning sweep, routed by the same key
//	GET  /v1/membership   per-backend health, breaker, and traffic state
//	GET  /v1/models       per-shard model registry views
//	GET  /healthz         gate liveness
//	GET  /readyz          200 while ≥1 backend is healthy
//
// SIGTERM stops accepting, finishes in-flight requests, writes the
// -metrics manifest, and exits 0.
//
// A second mode, -load, turns the binary into the bench client behind
// scripts/picgate_load.sh: it drives -target with concurrent predict
// requests across distinct model keys and prints a JSON stats document
// (RPS, p50/p99, error rate, per-shard cache hits) for BENCH_serve.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"picpredict/internal/cli"
	"picpredict/internal/gate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("picgate: ")

	var (
		listen     = flag.String("listen", "127.0.0.1:8070", "HTTP listen address (host:port; port 0 picks a free port)")
		backends   = flag.String("backends", "", "comma-separated picserve shard addresses (host:port,host:port,...)")
		configPath = flag.String("config", "", "JSON gate config file (alternative to flags; see internal/gate.FileConfig)")

		replicas  = flag.Int("replicas", 2, "distinct backends eligible per key (owner + successors)")
		healthInt = flag.Duration("health-interval", time.Second, "backend /readyz poll period")
		failN     = flag.Int("fail-threshold", 3, "consecutive failed polls before ejecting a backend")
		reviveN   = flag.Int("revive-threshold", 2, "consecutive successful polls before reinstating")
		reqTO     = flag.Duration("request-timeout", 30*time.Second, "end-to-end deadline per routed request")
		attemptTO = flag.Duration("attempt-timeout", 10*time.Second, "deadline per backend attempt")
		retries   = flag.Int("max-retries", 2, "retry attempts per request (budget permitting)")
		budget    = flag.Float64("retry-budget", 0.1, "retries+hedges as a fraction of primary traffic")
		hedgeQ    = flag.Float64("hedge-quantile", 0.95, "latency percentile that triggers a hedge (0 disables)")
		breakN    = flag.Int("breaker-threshold", 5, "consecutive request failures that open a backend's breaker")
		breakCool = flag.Duration("breaker-cooldown", 2*time.Second, "open breaker cooldown before a half-open probe")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound after SIGTERM")
		seed      = flag.Int64("seed", 1, "backoff-jitter seed (fixed seeds keep chaos runs reproducible)")

		metricsPath = flag.String("metrics", "", "write a JSON run manifest to this file on drain")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address")

		loadMode   = flag.Bool("load", false, "run as a load-bench client against -target instead of serving")
		target     = flag.String("target", "", "load mode: base URL to drive (e.g. http://127.0.0.1:8070)")
		loadDur    = flag.Duration("duration", 10*time.Second, "load mode: measured duration")
		loadConc   = flag.Int("concurrency", 8, "load mode: concurrent closed-loop workers")
		loadKeys   = flag.Int("keys", 6, "load mode: distinct model configurations (routing keys) to rotate")
		loadScen   = flag.String("scenario", "", "load mode: scenario name in request bodies (empty: server default)")
		loadRanks  = flag.String("ranks", "64,128", "load mode: rank counts per request")
		loadOut    = flag.String("o", "", "load mode: write the stats JSON here (default stdout)")
		loadNoWarm = flag.Bool("no-warmup", false, "load mode: skip the one-request-per-key warmup (measure cold training)")
	)
	flag.Parse()

	ctx, stop := cli.Context()
	defer stop()

	if *loadMode {
		if err := runLoad(ctx, *target, *loadDur, *loadConc, *loadKeys, *loadScen, *loadRanks, *loadOut, !*loadNoWarm); err != nil {
			log.Fatal(err)
		}
		return
	}

	var cfg gate.Config
	switch {
	case *configPath != "" && *backends != "":
		log.Fatal("-config and -backends are mutually exclusive")
	case *configPath != "":
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatalf("-config: %v", err)
		}
		cfg, err = gate.DecodeConfig(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("-config %s: %v", *configPath, err)
		}
	case *backends != "":
		list, err := cli.ParseBackends("-backends", *backends)
		if err != nil {
			log.Fatal(err)
		}
		cfg = gate.Config{
			Backends:         list,
			Replicas:         *replicas,
			HealthInterval:   *healthInt,
			FailThreshold:    *failN,
			ReviveThreshold:  *reviveN,
			RequestTimeout:   *reqTO,
			AttemptTimeout:   *attemptTO,
			MaxRetries:       *retries,
			RetryBudget:      *budget,
			HedgeQuantile:    *hedgeQ,
			BreakerThreshold: *breakN,
			BreakerCooldown:  *breakCool,
			Seed:             *seed,
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := cli.ParseAddr("-listen", *listen); err != nil {
		log.Fatal(err)
	}
	if err := cli.PositiveDuration("-drain-timeout", *drainTO); err != nil {
		log.Fatal(err)
	}

	run, err := cli.StartRun("picgate", *metricsPath, *pprofAddr, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	cfg.Obs = run.Reg

	g, err := gate.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	run.SetConfig(map[string]any{
		"listen": *listen, "backends": cfg.Backends, "replicas": cfg.Replicas,
		"instance_id": g.Instance(), "max_retries": cfg.MaxRetries,
		"retry_budget": cfg.RetryBudget, "hedge_quantile": cfg.HedgeQuantile,
		"breaker_threshold": cfg.BreakerThreshold,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("-listen: %v", err)
	}
	// The smoke harness greps this line for the bound address (port 0 runs).
	log.Printf("gating on http://%s (instance %s, %d backends, predict at /v1/predict)",
		ln.Addr(), g.Instance(), len(cfg.Backends))
	run.Reg.StageDone("startup")

	if err := g.Serve(ctx, ln, *drainTO); err != nil {
		finishErr := run.Finish()
		log.Print(err)
		if finishErr != nil {
			log.Print(finishErr)
		}
		os.Exit(1)
	}
	run.Reg.StageDone("serve")
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}

// runLoad is the -load mode: build one body per key (distinct model seeds
// spread keys across shards), drive the target, and emit the stats JSON.
func runLoad(ctx context.Context, target string, dur time.Duration, conc, keys int, scenario, ranks, out string, warmup bool) error {
	if target == "" {
		return fmt.Errorf("-load needs -target")
	}
	if err := cli.Positive("-concurrency", conc); err != nil {
		return err
	}
	if err := cli.Positive("-keys", keys); err != nil {
		return err
	}
	rankList, err := cli.ParseRanks(ranks)
	if err != nil {
		return err
	}
	bodies := make([][]byte, 0, keys)
	for k := 0; k < keys; k++ {
		body := map[string]any{
			"ranks": rankList,
			"model": map[string]any{"fast": true, "seed": k + 1},
		}
		if scenario != "" {
			body["scenario"] = scenario
		}
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		bodies = append(bodies, b)
	}
	stats, err := gate.RunLoad(ctx, gate.LoadConfig{
		Target:      target,
		Duration:    dur,
		Concurrency: conc,
		Bodies:      bodies,
		Warmup:      warmup,
	})
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}
