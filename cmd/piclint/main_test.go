package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"picpredict/internal/analysis/framework"
)

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Fatalf("default selection: want the 10-analyzer suite, got %d", len(all))
	}

	some, err := selectAnalyzers("floatcmp, determinism")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].Name != "floatcmp" || some[1].Name != "determinism" {
		t.Fatalf("subset selection wrong: %v", names(some))
	}

	if _, err := selectAnalyzers("nosuch"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("unknown analyzer must be rejected, got %v", err)
	}
}

func names(as []*framework.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// sample returns one active and one suppressed finding.
func sample() []framework.Finding {
	return []framework.Finding{
		{Analyzer: "floatcmp", File: "a.go", Line: 3, Col: 7, Message: "exact float comparison"},
		{Analyzer: "determinism", File: "b.go", Line: 9, Col: 2, Message: "time.Now in a simulation package",
			Suppressed: true, Reason: "obs timing"},
	}
}

func TestReportText(t *testing.T) {
	var buf bytes.Buffer
	failed := Report(&buf, sample(), false, false)
	if !failed {
		t.Error("an active finding must fail the run")
	}
	out := buf.String()
	if !strings.Contains(out, "a.go:3:7: exact float comparison [floatcmp]") {
		t.Errorf("text output missing finding line:\n%s", out)
	}
	if strings.Contains(out, "b.go") {
		t.Errorf("suppressed finding leaked without -show-suppressed:\n%s", out)
	}
	if !strings.Contains(out, "1 finding(s) (+1 suppressed)") {
		t.Errorf("summary line wrong:\n%s", out)
	}

	buf.Reset()
	Report(&buf, sample(), false, true)
	if !strings.Contains(buf.String(), "suppressed (obs timing)") {
		t.Errorf("-show-suppressed must include the waived finding and reason:\n%s", buf.String())
	}
}

func TestReportJSON(t *testing.T) {
	var buf bytes.Buffer
	failed := Report(&buf, sample(), true, false)
	if !failed {
		t.Error("an active finding must fail the run")
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Total != 1 || rep.Suppressed != 1 || len(rep.Findings) != 1 {
		t.Fatalf("envelope wrong: %+v", rep)
	}
	if rep.Findings[0].File != "a.go" || rep.Findings[0].Analyzer != "floatcmp" {
		t.Fatalf("finding wrong: %+v", rep.Findings[0])
	}

	// -show-suppressed must serialise the waiver reason: the JSON audit
	// artifact is how CI reviews the escape hatches in use, and a
	// suppression without its reason is unreviewable.
	buf.Reset()
	Report(&buf, sample(), true, true)
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("-json -show-suppressed output invalid: %v\n%s", err, buf.String())
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("-show-suppressed must include waived findings: %+v", rep)
	}
	var waived *framework.Finding
	for i := range rep.Findings {
		if rep.Findings[i].Suppressed {
			waived = &rep.Findings[i]
		}
	}
	if waived == nil || waived.Reason != "obs timing" {
		t.Fatalf("suppressed finding must carry its waiver reason, got %+v", waived)
	}
	if !strings.Contains(buf.String(), `"reason"`) {
		t.Fatalf("JSON output missing the reason field:\n%s", buf.String())
	}

	// A clean run must still emit a well-formed envelope.
	buf.Reset()
	if Report(&buf, nil, true, false) {
		t.Error("no findings must not fail the run")
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("clean -json output invalid: %v", err)
	}
	if rep.Findings == nil || len(rep.Findings) != 0 {
		t.Fatalf("clean run must emit an empty findings array, got %+v", rep.Findings)
	}
}
