// Command piclint runs the project's static-analysis suite: ten analyzers
// enforcing the determinism, error-handling, context, concurrency, and
// serving contracts the prediction pipeline's guarantees rest on (see
// internal/analysis).
//
// Usage:
//
//	piclint [-json] [-analyzers name,name] [-show-suppressed] [packages]
//
// With no package patterns it analyses ./... relative to the current
// directory. The exit status is 0 when the tree is clean, 1 when any
// unsuppressed finding is reported, and 2 on usage or load errors.
//
// -json emits machine-readable findings (one object per finding, wrapped
// in a summary envelope) for CI annotation; -show-suppressed includes the
// findings that //lint:allow directives waived, so the escape hatches in
// use stay auditable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"picpredict/internal/analysis"
	"picpredict/internal/analysis/framework"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("piclint: ")

	var (
		jsonOut        = flag.Bool("json", false, "emit findings as JSON for CI annotation")
		analyzersCSV   = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		showSuppressed = flag.Bool("show-suppressed", false, "also print findings waived by //lint:allow directives")
		list           = flag.Bool("list", false, "list the available analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: piclint [-json] [-analyzers name,name] [-show-suppressed] [-list] [packages]\n\n"+
				"Runs the piclint analyzer suite over the matched packages (default ./...).\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nExit status:\n"+
			"  0  the tree is clean (every finding, if any, is waived by //lint:allow)\n"+
			"  1  at least one unsuppressed finding was reported\n"+
			"  2  usage or load error (unknown analyzer, unparseable package)\n")
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*analyzersCSV)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := Lint(".", patterns, analyzers)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}

	failed := Report(os.Stdout, findings, *jsonOut, *showSuppressed)
	if failed {
		os.Exit(1)
	}
}

// selectAnalyzers resolves a comma-separated analyzer list ("" means all).
func selectAnalyzers(csv string) ([]*framework.Analyzer, error) {
	all := analysis.All()
	if csv == "" {
		return all, nil
	}
	byName := make(map[string]*framework.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*framework.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run piclint -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Lint loads the packages matched by patterns (relative to dir) and runs
// the analyzers over each, returning all findings — suppressed ones
// included — in stable position order.
func Lint(dir string, patterns []string, analyzers []*framework.Analyzer) ([]framework.Finding, error) {
	pkgs, err := framework.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// Directives may name any analyzer in the suite, not just the selected
	// subset — a -analyzers run must not misreport the rest as unknown.
	suite := make([]string, 0, len(analysis.All()))
	for _, a := range analysis.All() {
		suite = append(suite, a.Name)
	}
	var findings []framework.Finding
	for _, pkg := range pkgs {
		fs, err := framework.Analyze(pkg, analyzers, suite...)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	framework.SortFindings(findings)
	return findings, nil
}

// jsonReport is the -json envelope.
type jsonReport struct {
	Findings   []framework.Finding `json:"findings"`
	Total      int                 `json:"total"`
	Suppressed int                 `json:"suppressed"`
}

// Report writes the findings in text or JSON form and reports whether any
// unsuppressed finding should fail the run.
func Report(w io.Writer, findings []framework.Finding, jsonOut, showSuppressed bool) bool {
	var active, suppressed []framework.Finding
	for _, f := range findings {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		} else {
			active = append(active, f)
		}
	}

	if jsonOut {
		out := active
		if showSuppressed {
			out = findings
		}
		if out == nil {
			out = []framework.Finding{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Findings: out, Total: len(active), Suppressed: len(suppressed)}); err != nil {
			log.Println(err)
		}
		return len(active) > 0
	}

	for _, f := range active {
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
	if showSuppressed {
		for _, f := range suppressed {
			fmt.Fprintf(w, "%s:%d:%d: suppressed (%s): %s [%s]\n", f.File, f.Line, f.Col, f.Reason, f.Message, f.Analyzer)
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(w, "piclint: %d finding(s)", len(active))
		if len(suppressed) > 0 {
			fmt.Fprintf(w, " (+%d suppressed)", len(suppressed))
		}
		fmt.Fprintln(w)
	}
	return len(active) > 0
}
