// Command wlgen is the Dynamic Workload Generator CLI: it mimics a particle
// mapping algorithm on a particle trace and reports the synthesised
// per-processor workload — computation matrix statistics, communication
// volume, resource utilization, and (for bin mapping) bin counts.
//
// Usage:
//
//	wlgen -trace trace.bin -ranks 1044 -mapping bin -filter 0.00428
//	wlgen -trace trace.bin -ranks 4096 -mapping element -elements 128,128,1 -n 4 -heatmap heat.csv
//	wlgen -trace trace.bin -ranks 4096 -mapping element -elements 128,128,1 -rebalance threshold:1.5 -save wl.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"picpredict"
	"picpredict/internal/cli"
	"picpredict/internal/config"
	"picpredict/internal/obs"
	"picpredict/internal/resilience"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wlgen: ")

	var (
		traceFile = flag.String("trace", "", "input particle trace (required)")
		cfgFile   = flag.String("config", "", "JSON configuration file (flags override its values)")
		ranks     = flag.Int("ranks", 1044, "processor count R")
		mappingF  = flag.String("mapping", "bin", "mapping algorithm: element, bin, hilbert")
		rebalF    = flag.String("rebalance", "", "dynamic load-balancing policy: none, periodic:K, threshold:F, diffusion:F[/R] (element mapping only; baked into -save artefacts)")
		filter    = flag.Float64("filter", 0, "projection filter size (ghosts + bin threshold)")
		relaxed   = flag.Bool("relaxed", false, "relax the processor-count limit on bin splitting")
		midpoint  = flag.Bool("midpoint", false, "use midpoint planar cuts instead of median")
		elements  = flag.String("elements", "", "element grid ex,ey,ez (element/hilbert mapping)")
		gridN     = flag.Int("n", 4, "grid resolution per element")
		workers   = flag.Int("workers", 0, "parallel workload-fill workers (0 serial)")
		heatmap   = flag.String("heatmap", "", "write the computation matrix as CSV to this file")
		commCSV   = flag.String("commcsv", "", "write the communication matrix as CSV to this file")
		save      = flag.String("save", "", "save the full workload (binary) for later simulation")
		ascii     = flag.Bool("ascii", false, "render an ASCII heat map to stdout")
		series    = flag.Bool("series", false, "print the per-interval peak/busy/migration series")

		metricsPath = flag.String("metrics", "", "write a JSON run manifest (timings, counters, artefact checksums) to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *traceFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := cli.Context()
	defer stop()

	run, err := cli.StartRun("wlgen", *metricsPath, *pprofAddr, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	ctx = obs.With(ctx, run.Reg)

	tr, err := cli.OpenTrace(*traceFile)
	if err != nil {
		log.Fatal(err)
	}
	run.Reg.StageDone("read-trace")
	if *cfgFile != "" {
		cf, err := config.LoadPath(*cfgFile)
		if err != nil {
			log.Fatal(err)
		}
		cf.ApplyMesh(tr)
		// Flags explicitly set on the command line override the file.
		set := map[string]bool{}
		flag.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
		if !set["ranks"] {
			*ranks = cf.Ranks
		}
		if !set["mapping"] {
			*mappingF = cf.Mapping
		}
		if !set["filter"] {
			*filter = cf.FilterRadius
		}
		if !set["relaxed"] {
			*relaxed = cf.RelaxedBins
		}
		if !set["midpoint"] {
			*midpoint = cf.MidpointSplit
		}
	}
	if err := cli.Positive("-ranks", *ranks); err != nil {
		log.Fatal(err)
	}
	if err := cli.NonNegative("-filter", *filter); err != nil {
		log.Fatal(err)
	}
	rebal, err := cli.ParseRebalance("-rebalance", *rebalF)
	if err != nil {
		log.Fatal(err)
	}
	if rebal != "" && rebal != "none" && *mappingF != "element" {
		log.Fatalf("-rebalance %s requires -mapping element, got %q", rebal, *mappingF)
	}
	if *elements != "" {
		dims, err := cli.ParseElements(*elements)
		if err != nil {
			log.Fatal(err)
		}
		if err := cli.Positive("-n", *gridN); err != nil {
			log.Fatal(err)
		}
		tr.WithMesh(dims[0], dims[1], dims[2], *gridN)
	}
	fmt.Printf("trace: %d particles, %d frames, sampled every %d iterations\n",
		tr.NumParticles(), tr.Frames(), tr.SampleEvery())
	run.SetConfig(map[string]any{
		"trace": *traceFile, "ranks": *ranks, "mapping": *mappingF,
		"rebalance": rebal, "filter": *filter, "relaxed": *relaxed,
		"midpoint": *midpoint, "workers": *workers,
	})

	start := time.Now()
	wl, err := tr.GenerateWorkloadContext(ctx, picpredict.WorkloadOptions{
		Ranks:         *ranks,
		Mapping:       picpredict.MappingKind(*mappingF),
		Rebalance:     rebal,
		FilterRadius:  *filter,
		RelaxedBins:   *relaxed,
		MidpointSplit: *midpoint,
		Workers:       *workers,
	})
	if err != nil {
		if ctx.Err() != nil {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
	run.Reg.StageDone("generate")
	fmt.Printf("workload generated for R=%d (%s mapping) in %v\n",
		wl.Ranks(), *mappingF, time.Since(start).Round(time.Millisecond))

	u := wl.Utilization()
	if d, err := wl.Distribution(); err == nil {
		fmt.Printf("busiest interval %d: min/p50/p90/p99/max = %d/%d/%d/%d/%d, gini %.2f\n",
			d.Frame, d.Min, d.P50, d.P90, d.P99, d.Max, d.Gini)
	}
	fmt.Printf("peak particles/processor:  %d\n", wl.Peak())
	fmt.Printf("ghost peak:                %d\n", wl.GhostPeak())
	fmt.Printf("load imbalance (max/mean): %.1f\n", wl.Imbalance())
	fmt.Printf("resource utilization:      %.2f%% mean, %.2f%% ever-busy\n", 100*u.Mean, 100*u.Ever)
	if bins := wl.MaxBins(); bins > 0 {
		fmt.Printf("max bins:                  %d\n", bins)
	}
	var totalMig int64
	for _, m := range wl.MigrationsPerFrame() {
		totalMig += m
	}
	fmt.Printf("total particle migrations: %d\n", totalMig)
	if epochs := wl.MigrationEpochs(); epochs > 0 {
		elems, parts := wl.MigrationTotals()
		fmt.Printf("rebalance epochs:          %d (%d elements, %d resident particles shipped)\n",
			epochs, elems, parts)
	}

	if *series {
		fmt.Printf("\n%10s %10s %10s %12s\n", "iteration", "peak", "busy", "migrations")
		peaks := wl.PeakPerFrame()
		busy := wl.NonZeroRanksPerFrame()
		mig := wl.MigrationsPerFrame()
		for k, it := range wl.Iterations() {
			fmt.Printf("%10d %10d %10d %12d\n", it, peaks[k], busy[k], mig[k])
		}
	}
	if *ascii {
		if err := wl.RenderHeatmap(os.Stdout, 32, 72); err != nil {
			log.Fatal(err)
		}
	}
	if *heatmap != "" {
		if err := writeFile(*heatmap, wl.WriteHeatmapCSV); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("heat map written to %s\n", *heatmap)
	}
	if *commCSV != "" {
		if err := writeFile(*commCSV, wl.WriteCommCSV); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("communication matrix written to %s\n", *commCSV)
	}
	if *save != "" {
		if err := writeFile(*save, wl.Write); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload saved to %s\n", *save)
	}
	run.Reg.StageDone("report")
	run.Artefact(*heatmap)
	run.Artefact(*commCSV)
	run.Artefact(*save)
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
}

// writeFile streams fn's output into path atomically: the file appears
// complete or not at all, never torn.
func writeFile(path string, fn func(io.Writer) error) error {
	return resilience.WriteFileAtomic(path, fn)
}
