package main

import "testing"

func TestParseElements(t *testing.T) {
	ex, ey, ez, err := parseElements("128, 64,1")
	if err != nil || ex != 128 || ey != 64 || ez != 1 {
		t.Errorf("parseElements = %d,%d,%d, %v", ex, ey, ez, err)
	}
	for _, bad := range []string{"", "1,2", "1,2,3,4", "a,b,c"} {
		if _, _, _, err := parseElements(bad); err == nil {
			t.Errorf("parseElements(%q) accepted", bad)
		}
	}
}
