// Command picgen runs a PIC application scenario and writes the sampled
// particle trace — the input artefact of the prediction framework.
//
// Usage:
//
//	picgen -scenario hele-shaw -out trace.bin
//	picgen -scenario hele-shaw -np 5000 -steps 500 -sample 50 -out small.bin
//
// Long runs can checkpoint and survive being killed (or interrupted with
// ^C — SIGINT drains the pipeline and writes a final checkpoint):
//
//	picgen -scenario hele-shaw -out trace.bin -checkpoint-every 200
//	picgen -scenario hele-shaw -out trace.bin -resume
//
// A resumed run truncates the trace to the frames the checkpoint vouches
// for and appends from there, producing a file byte-identical to an
// uninterrupted run.
//
// Fused mode runs the whole prediction pipeline in one process — the
// simulation streams frames straight into the workload generator and the
// BSP simulator, with no intermediate files:
//
//	picgen -scenario hele-shaw -fused -ranks 1044,2088
//	picgen -scenario hele-shaw -fused -out trace.bin -checkpoint-every 200
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"picpredict"
	"picpredict/internal/cli"
	"picpredict/internal/obs"
	"picpredict/internal/pipeline"
	"picpredict/internal/resilience"
	"picpredict/internal/scenario"
	"picpredict/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("picgen: ")

	var (
		scenarioName = flag.String("scenario", "hele-shaw", "scenario: hele-shaw, hele-shaw-paper, uniform, gaussian, shock-tube")
		out          = flag.String("out", "trace.bin", "output trace file")
		np           = flag.Int("np", 0, "override particle count")
		steps        = flag.Int("steps", 0, "override iteration count")
		sample       = flag.Int("sample", 0, "override sampling interval (iterations)")
		seed         = flag.Int64("seed", 0, "override random seed")
		filter       = flag.Float64("filter", 0, "override projection filter size")
		gzipped      = flag.Bool("gzip", false, "gzip-compress the trace (readers decompress transparently)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint the run every N iterations (0 disables)")
		resume       = flag.Bool("resume", false, "resume a killed run from its checkpoint (<out>.ckpt)")
		ckptPath     = flag.String("checkpoint", "", "checkpoint file (default <out>.ckpt)")

		fused     = flag.Bool("fused", false, "fused mode: stream the simulation straight into workload generation and BSP prediction, no intermediate files")
		ranksCSV  = flag.String("ranks", "1044,2088,4176,8352", "fused: processor counts, comma separated")
		mappingF  = flag.String("mapping", "bin", "fused: mapping algorithm: element, bin, hilbert")
		workers   = flag.Int("workers", 0, "fused: parallel workload-fill workers (0 serial)")
		depth     = flag.Int("depth", 4, "fused: bounded-channel depth between simulation and builders (0 synchronous)")
		totalEl   = flag.Int("total-elements", 16384, "fused: total spectral elements of the application")
		gridN     = flag.Float64("n", 4, "fused: grid resolution per element")
		machine   = flag.String("machine", "quartz", "fused: target system: quartz, vulcan, titan")
		noise     = flag.Float64("noise", 0.105, "fused: synthetic testbed noise for accuracy evaluation")
		fast      = flag.Bool("fast", false, "fused: fast (less accurate) model training")
		wallclock = flag.Bool("wallclock", false, "fused: train models against wall-clock kernel executions")

		metricsPath = flag.String("metrics", "", "write a JSON run manifest (timings, counters, artefact checksums) to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	ctx, stop := cli.Context()
	defer stop()

	run, err := cli.StartRun("picgen", *metricsPath, *pprofAddr, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	ctx = obs.With(ctx, run.Reg)

	spec, err := cli.SpecByName(*scenarioName)
	if err != nil {
		log.Fatal(err)
	}
	if *np != 0 {
		if err := cli.Positive("-np", *np); err != nil {
			log.Fatal(err)
		}
		spec.NumParticles = *np
	}
	if *steps != 0 {
		if err := cli.Positive("-steps", *steps); err != nil {
			log.Fatal(err)
		}
		spec.Steps = *steps
	}
	if *sample != 0 {
		if err := cli.Positive("-sample", *sample); err != nil {
			log.Fatal(err)
		}
		spec.SampleEvery = *sample
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *filter != 0 {
		if err := cli.NonNegative("-filter", *filter); err != nil {
			log.Fatal(err)
		}
		spec.FilterRadius = *filter
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	if *ckptPath == "" {
		*ckptPath = *out + ".ckpt"
	}
	checkpointing := *ckptEvery > 0 || *resume
	if *gzipped && checkpointing {
		log.Fatal("-gzip cannot be combined with checkpointing: resuming truncates and appends to the trace, which a gzip stream does not support")
	}
	if *gzipped && *fused {
		log.Fatal("-gzip cannot be combined with -fused: fused checkpointing appends to the trace")
	}

	if *fused {
		// The trace file is optional in fused mode: only write one when the
		// user asked for it (or checkpointing needs the durable state).
		outSet := false
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "out" {
				outSet = true
			}
		})
		traceOut := ""
		if outSet || checkpointing {
			traceOut = *out
		}
		run.SetConfig(map[string]any{
			"scenario": spec.Name, "np": spec.NumParticles, "steps": spec.Steps,
			"sample": spec.SampleEvery, "seed": spec.Seed, "filter": spec.FilterRadius,
			"fused": true, "ranks": *ranksCSV, "mapping": *mappingF,
			"workers": *workers, "depth": *depth, "total_elements": *totalEl,
			"n": *gridN, "machine": *machine, "noise": *noise,
		})
		runFused(ctx, spec, fusedFlags{
			ranksCSV: *ranksCSV, mapping: *mappingF, filter: *filter,
			workers: *workers, depth: *depth,
			totalElements: *totalEl, gridN: *gridN, machine: *machine, noise: *noise,
			fast: *fast, wallclock: *wallclock,
			traceOut: traceOut, ckptEvery: *ckptEvery, ckptPath: *ckptPath, resume: *resume,
		}, run)
		return
	}

	run.SetConfig(map[string]any{
		"scenario": spec.Name, "np": spec.NumParticles, "steps": spec.Steps,
		"sample": spec.SampleEvery, "seed": spec.Seed, "filter": spec.FilterRadius,
		"gzip": *gzipped, "checkpoint_every": *ckptEvery, "resume": *resume,
	})
	fmt.Printf("running %s: %d particles, %d elements (N=%d), %d iterations, sampling every %d\n",
		spec.Name, spec.NumParticles, spec.Elements[0]*spec.Elements[1]*spec.Elements[2], spec.N,
		spec.Steps, spec.SampleEvery)
	start := time.Now()

	switch {
	case checkpointing:
		err = runCheckpointed(ctx, spec, *out, *ckptPath, *ckptEvery, *resume)
	case *gzipped:
		err = resilience.WriteFileAtomic(*out, func(w io.Writer) error {
			return writeCompressedTrace(ctx, spec, w)
		})
	default:
		err = resilience.WriteFileAtomic(*out, func(w io.Writer) error {
			return writeTrace(ctx, spec, w)
		})
	}
	if err != nil {
		if ctx.Err() != nil {
			if checkpointing {
				log.Fatalf("interrupted — checkpoint written; rerun with -resume to continue")
			}
			log.Fatalf("interrupted — no trace written (use -checkpoint-every to make runs resumable)")
		}
		log.Fatal(err)
	}

	run.Reg.StageDone("simulate+write")

	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%.1f MB) in %v\n", *out, float64(info.Size())/1e6, time.Since(start).Round(time.Millisecond))
	e := spec.Elements
	fmt.Printf("for element/hilbert mapping pass: -elements %d,%d,%d -n %d\n", e[0], e[1], e[2], spec.N)

	run.Artefact(*out)
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
}

// runCheckpointed executes (or resumes) a scenario with periodic
// checkpoints via the pipeline's TraceRun stage. Cancelling ctx writes a
// final checkpoint before returning, so the run can always be resumed.
func runCheckpointed(ctx context.Context, spec scenario.Spec, outPath, ckptPath string, every int, resume bool) error {
	tr, err := pipeline.NewTraceRun(spec, pipeline.TraceRunOptions{
		Out:             outPath,
		CheckpointPath:  ckptPath,
		CheckpointEvery: every,
		Resume:          resume,
	})
	if err != nil {
		return err
	}
	if resume {
		fmt.Printf("resumed from %s: iteration %d, %d trace frames intact\n",
			ckptPath, tr.Sim.Iteration(), tr.FramesResumed())
	}
	return tr.Run(ctx)
}

// writeTrace streams the scenario through the pipeline into a plain trace
// writer.
func writeTrace(ctx context.Context, spec scenario.Spec, w io.Writer) error {
	sim, err := spec.NewSim()
	if err != nil {
		return err
	}
	tw, err := trace.NewWriter(w, trace.Header{
		NumParticles: spec.NumParticles,
		SampleEvery:  spec.SampleEvery,
		Domain:       spec.Domain,
	})
	if err != nil {
		return err
	}
	if err := pipeline.Stream(ctx, &pipeline.SimSource{Sim: sim}, pipeline.WriterSink{W: tw}); err != nil {
		return err
	}
	return tw.Flush()
}

// writeCompressedTrace streams the scenario through the pipeline into a
// gzip-compressed trace writer.
func writeCompressedTrace(ctx context.Context, spec scenario.Spec, w io.Writer) error {
	sim, err := spec.NewSim()
	if err != nil {
		return err
	}
	cw, err := trace.NewCompressedWriter(w, trace.Header{
		NumParticles: spec.NumParticles,
		SampleEvery:  spec.SampleEvery,
		Domain:       spec.Domain,
	})
	if err != nil {
		return err
	}
	if err := pipeline.Stream(ctx, &pipeline.SimSource{Sim: sim}, pipeline.CompressedWriterSink{W: cw}); err != nil {
		return err
	}
	return cw.Close()
}

// fusedFlags carries the fused-mode flag values into runFused.
type fusedFlags struct {
	ranksCSV      string
	mapping       string
	filter        float64
	workers       int
	depth         int
	totalElements int
	gridN         float64
	machine       string
	noise         float64
	fast          bool
	wallclock     bool
	traceOut      string
	ckptEvery     int
	ckptPath      string
	resume        bool
}

// runFused executes the single-process fused pipeline and prints the same
// prediction table the three-binary flow (picgen → wlgen/predict) would.
func runFused(ctx context.Context, spec scenario.Spec, f fusedFlags, run *cli.Run) {
	ranksList, err := cli.ParseRanks(f.ranksCSV)
	if err != nil {
		log.Fatal(err)
	}
	if f.workers < 0 {
		log.Fatal(cli.Positive("-workers", f.workers))
	}
	mspec, err := picpredict.MachineByName(f.machine)
	if err != nil {
		log.Fatal(err)
	}
	sc := picpredict.FromSpec(spec)

	fmt.Printf("fused run %s: %d particles, %d iterations, R=%v\n",
		spec.Name, spec.NumParticles, spec.Steps, ranksList)
	start := time.Now()
	res, err := picpredict.RunFused(ctx, sc, picpredict.FusedOptions{
		Ranks:           ranksList,
		Mapping:         picpredict.MappingKind(f.mapping),
		FilterRadius:    f.filter,
		Workers:         f.workers,
		Depth:           f.depth,
		Train:           picpredict.TrainOptions{Seed: 1, Fast: f.fast, WallClock: f.wallclock},
		TotalElements:   f.totalElements,
		GridN:           f.gridN,
		Machine:         &mspec,
		Noise:           f.noise,
		TraceOut:        f.traceOut,
		CheckpointEvery: f.ckptEvery,
		CheckpointPath:  f.ckptPath,
		Resume:          f.resume,
		Obs:             run.Reg,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || ctx.Err() != nil {
			if f.ckptEvery > 0 || f.resume {
				log.Fatalf("interrupted — checkpoint written; rerun with -resume to continue")
			}
			log.Fatalf("interrupted")
		}
		log.Fatal(err)
	}

	fmt.Printf("streamed %d frames in %v\n", res.Frames, time.Since(start).Round(time.Millisecond))
	for _, s := range res.Models.Formulas() {
		fmt.Println("  ", s)
	}
	fmt.Printf("\n%8s %14s %14s %14s %10s\n", "R", "predicted (s)", "compute (s)", "comm (s)", "MAPE")
	for i, ranks := range res.Ranks {
		pred := res.Predictions[i]
		var comp, comm float64
		for k := range pred.Compute {
			comp += pred.Compute[k]
			comm += pred.Comm[k]
		}
		fmt.Printf("%8d %14.5g %14.5g %14.5g %9.2f%%\n",
			ranks, pred.Total, comp, comm, picpredict.MeanAccuracy(res.Accuracy[i]))
	}
	if f.traceOut != "" {
		if info, err := os.Stat(f.traceOut); err == nil {
			fmt.Printf("trace written to %s (%.1f MB)\n", f.traceOut, float64(info.Size())/1e6)
		}
		run.Artefact(f.traceOut)
	}
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
}
