// Command picgen runs a PIC application scenario and writes the sampled
// particle trace — the input artefact of the prediction framework.
//
// Usage:
//
//	picgen -scenario hele-shaw -out trace.bin
//	picgen -scenario hele-shaw -np 5000 -steps 500 -sample 50 -out small.bin
//
// Long runs can checkpoint and survive being killed:
//
//	picgen -scenario hele-shaw -out trace.bin -checkpoint-every 200
//	picgen -scenario hele-shaw -out trace.bin -resume
//
// A resumed run truncates the trace to the frames the checkpoint vouches
// for and appends from there, producing a file byte-identical to an
// uninterrupted run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"picpredict/internal/geom"
	"picpredict/internal/resilience"
	"picpredict/internal/scenario"
	"picpredict/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("picgen: ")

	var (
		scenarioName = flag.String("scenario", "hele-shaw", "scenario: hele-shaw, hele-shaw-paper, uniform, gaussian, shock-tube")
		out          = flag.String("out", "trace.bin", "output trace file")
		np           = flag.Int("np", 0, "override particle count")
		steps        = flag.Int("steps", 0, "override iteration count")
		sample       = flag.Int("sample", 0, "override sampling interval (iterations)")
		seed         = flag.Int64("seed", 0, "override random seed")
		filter       = flag.Float64("filter", 0, "override projection filter size")
		gzipped      = flag.Bool("gzip", false, "gzip-compress the trace (readers decompress transparently)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint the run every N iterations (0 disables)")
		resume       = flag.Bool("resume", false, "resume a killed run from its checkpoint (<out>.ckpt)")
		ckptPath     = flag.String("checkpoint", "", "checkpoint file (default <out>.ckpt)")
	)
	flag.Parse()

	spec, err := scenarioByName(*scenarioName)
	if err != nil {
		log.Fatal(err)
	}
	if *np > 0 {
		spec.NumParticles = *np
	}
	if *steps > 0 {
		spec.Steps = *steps
	}
	if *sample > 0 {
		spec.SampleEvery = *sample
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *filter > 0 {
		spec.FilterRadius = *filter
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	if *ckptPath == "" {
		*ckptPath = *out + ".ckpt"
	}
	if *gzipped && (*ckptEvery > 0 || *resume) {
		log.Fatal("-gzip cannot be combined with checkpointing: resuming truncates and appends to the trace, which a gzip stream does not support")
	}

	fmt.Printf("running %s: %d particles, %d elements (N=%d), %d iterations, sampling every %d\n",
		spec.Name, spec.NumParticles, spec.Elements[0]*spec.Elements[1]*spec.Elements[2], spec.N,
		spec.Steps, spec.SampleEvery)
	start := time.Now()

	switch {
	case *ckptEvery > 0 || *resume:
		if err := runCheckpointed(spec, *out, *ckptPath, *ckptEvery, *resume); err != nil {
			log.Fatal(err)
		}
	case *gzipped:
		err := resilience.WriteFileAtomic(*out, func(w io.Writer) error {
			return writeCompressedTrace(spec, w)
		})
		if err != nil {
			log.Fatal(err)
		}
	default:
		err := resilience.WriteFileAtomic(*out, func(w io.Writer) error {
			_, err := spec.WriteTrace(w)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%.1f MB) in %v\n", *out, float64(info.Size())/1e6, time.Since(start).Round(time.Millisecond))
	e := spec.Elements
	fmt.Printf("for element/hilbert mapping pass: -elements %d,%d,%d -n %d\n", e[0], e[1], e[2], spec.N)
}

// writeCompressedTrace runs the scenario and streams the trace gzip-
// compressed to w.
func writeCompressedTrace(spec scenario.Spec, w io.Writer) error {
	res, err := spec.Run()
	if err != nil {
		return err
	}
	cw, err := trace.NewCompressedWriter(w, trace.Header{
		NumParticles: spec.NumParticles,
		SampleEvery:  spec.SampleEvery,
		Domain:       spec.Domain,
	})
	if err != nil {
		return err
	}
	for k, it := range res.Iterations {
		if err := cw.WriteFrame(it, res.Frame(k)); err != nil {
			return err
		}
	}
	return cw.Close()
}

// runCheckpointed executes (or resumes) a scenario with periodic
// checkpoints. The trace is written incrementally; every `every` iterations
// the trace is flushed and fsynced, then the full simulation state is
// written atomically to ckptPath. A killed run restarts with -resume: the
// checkpoint restores the solver, the trace is truncated to the frames the
// checkpoint vouches for, and the run continues — the final trace is
// byte-identical to an uninterrupted run's. The checkpoint is removed on
// success.
func runCheckpointed(spec scenario.Spec, outPath, ckptPath string, every int, resume bool) error {
	sim, err := spec.NewSim()
	if err != nil {
		return err
	}
	h := trace.Header{
		NumParticles: spec.NumParticles,
		SampleEvery:  spec.SampleEvery,
		Domain:       spec.Domain,
	}

	var f *os.File
	var tw *trace.Writer
	framesWritten := 0
	if resume {
		framesWritten, err = restoreRun(sim, ckptPath)
		if err != nil {
			return err
		}
		f, tw, err = reopenTrace(outPath, h, framesWritten)
		if err != nil {
			return err
		}
		fmt.Printf("resumed from %s: iteration %d, %d trace frames intact\n", ckptPath, sim.Iteration(), framesWritten)
	} else {
		f, err = os.Create(outPath)
		if err != nil {
			return err
		}
		tw, err = trace.NewWriter(f, h)
		if err != nil {
			f.Close()
			return err
		}
	}
	defer f.Close()

	writeFrame := func(it int) error {
		if err := tw.WriteFrame(it, sim.Solver.Particles.Pos); err != nil {
			return err
		}
		framesWritten++
		return nil
	}
	if framesWritten == 0 {
		if err := writeFrame(0); err != nil {
			return err
		}
	}
	for it := sim.Iteration() + 1; it <= spec.Steps; it++ {
		sim.Step()
		if it%spec.SampleEvery == 0 {
			if err := writeFrame(it); err != nil {
				return err
			}
		}
		if every > 0 && it%every == 0 && it < spec.Steps {
			if err := checkpoint(sim, tw, f, ckptPath, framesWritten); err != nil {
				return err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// The run completed; the checkpoint has nothing left to protect.
	if err := os.Remove(ckptPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		log.Printf("warning: removing stale checkpoint %s: %v", ckptPath, err)
	}
	return nil
}

// checkpoint makes the trace durable, then atomically replaces the
// checkpoint file. The ordering matters: the checkpoint must never vouch
// for trace frames that are not yet on disk.
func checkpoint(sim *scenario.Sim, tw *trace.Writer, f *os.File, ckptPath string, framesWritten int) error {
	if err := tw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return resilience.WriteFileAtomic(ckptPath, func(w io.Writer) error {
		return sim.WriteCheckpoint(w, framesWritten)
	})
}

// restoreRun loads the checkpoint into the freshly built Sim and returns
// the number of trace frames the checkpointed run had durably written.
func restoreRun(sim *scenario.Sim, ckptPath string) (int, error) {
	ck, err := os.Open(ckptPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, fmt.Errorf("no checkpoint at %s — nothing to resume (did the previous run complete?)", ckptPath)
		}
		return 0, err
	}
	defer ck.Close()
	return sim.RestoreCheckpoint(ck)
}

// reopenTrace prepares the torn trace of a killed run for appending: it
// verifies the header matches the resumed scenario, verifies at least
// `frames` frames survived intact, truncates whatever lies beyond them (a
// torn tail, or frames newer than the checkpoint), and returns a writer
// positioned to append frame `frames`.
func reopenTrace(path string, h trace.Header, frames int) (*os.File, *trace.Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("opening trace to resume: %w", err)
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("reading trace to resume: %w", err)
	}
	if r.Legacy() {
		f.Close()
		return nil, nil, fmt.Errorf("trace %s is in the legacy v1 format, which has no frame checksums to resume against", path)
	}
	got := r.Header()
	if got.NumParticles != h.NumParticles || got.SampleEvery != h.SampleEvery || got.Domain != h.Domain {
		f.Close()
		return nil, nil, fmt.Errorf("trace %s was written by a different run configuration; refusing to resume", path)
	}
	intact := 0
	frameBuf := make([]geom.Vec3, h.NumParticles)
	for intact < frames {
		if _, err := r.Next(frameBuf); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("trace %s has only %d intact frames but the checkpoint recorded %d — the file was damaged after the checkpoint was taken: %w", path, intact, frames, err)
		}
		intact++
	}
	off := int64(trace.HeaderSize()) + int64(frames)*int64(trace.FrameSize(h.NumParticles))
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("truncating trace for resume: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	tw, err := trace.ResumeWriter(f, h, frames)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return f, tw, nil
}

func scenarioByName(name string) (scenario.Spec, error) {
	switch name {
	case "hele-shaw":
		return scenario.HeleShaw(), nil
	case "hele-shaw-paper":
		return scenario.HeleShawPaper(), nil
	case "uniform":
		return scenario.Uniform(), nil
	case "gaussian":
		return scenario.GaussianCluster(), nil
	case "shock-tube":
		return scenario.ShockTube(), nil
	default:
		return scenario.Spec{}, fmt.Errorf("unknown scenario %q", name)
	}
}
