// Command picgen runs a PIC application scenario and writes the sampled
// particle trace — the input artefact of the prediction framework.
//
// Usage:
//
//	picgen -scenario hele-shaw -out trace.bin
//	picgen -scenario hele-shaw -np 5000 -steps 500 -sample 50 -out small.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"picpredict"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("picgen: ")

	var (
		scenarioName = flag.String("scenario", "hele-shaw", "scenario: hele-shaw, hele-shaw-paper, uniform, gaussian, shock-tube")
		out          = flag.String("out", "trace.bin", "output trace file")
		np           = flag.Int("np", 0, "override particle count")
		steps        = flag.Int("steps", 0, "override iteration count")
		sample       = flag.Int("sample", 0, "override sampling interval (iterations)")
		seed         = flag.Int64("seed", 0, "override random seed")
		filter       = flag.Float64("filter", 0, "override projection filter size")
		gzipped      = flag.Bool("gzip", false, "gzip-compress the trace (readers decompress transparently)")
	)
	flag.Parse()

	spec, err := scenarioByName(*scenarioName)
	if err != nil {
		log.Fatal(err)
	}
	if *np > 0 {
		spec = spec.WithParticles(*np)
	}
	if *steps > 0 {
		spec = spec.WithSteps(*steps)
	}
	if *sample > 0 {
		spec = spec.WithSampleEvery(*sample)
	}
	if *seed != 0 {
		spec = spec.WithSeed(*seed)
	}
	if *filter > 0 {
		spec = spec.WithFilterRadius(*filter)
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	fmt.Printf("running %s: %d particles, %d elements (N=%d), %d iterations, sampling every %d\n",
		spec.Name(), spec.NumParticles(), spec.NumElements(), spec.GridN(), spec.Steps(), spec.SampleEvery())
	start := time.Now()
	if *gzipped {
		tr, err := spec.Run()
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteCompressed(f); err != nil {
			log.Fatal(err)
		}
	} else if err := spec.WriteTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%.1f MB) in %v\n", *out, float64(info.Size())/1e6, time.Since(start).Round(time.Millisecond))
	e := spec.Elements()
	fmt.Printf("for element/hilbert mapping pass: -elements %d,%d,%d -n %d\n", e[0], e[1], e[2], spec.GridN())
}

func scenarioByName(name string) (picpredict.Scenario, error) {
	switch name {
	case "hele-shaw":
		return picpredict.HeleShaw(), nil
	case "hele-shaw-paper":
		return picpredict.HeleShawFull(), nil
	case "uniform":
		return picpredict.UniformScenario(), nil
	case "gaussian":
		return picpredict.GaussianScenario(), nil
	case "shock-tube":
		return picpredict.ShockTubeScenario(), nil
	default:
		return picpredict.Scenario{}, fmt.Errorf("unknown scenario %q", name)
	}
}
