package main

import "testing"

func TestScenarioByName(t *testing.T) {
	for _, name := range []string{"hele-shaw", "hele-shaw-paper", "uniform", "gaussian", "shock-tube"} {
		s, err := scenarioByName(name)
		if err != nil {
			t.Errorf("scenarioByName(%q): %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", name, err)
		}
	}
	if _, err := scenarioByName("bogus"); err == nil {
		t.Error("unknown scenario accepted")
	}
}
