package main

import "testing"

func TestSelected(t *testing.T) {
	if !selected([]string{"all"}, "5") {
		t.Error("all does not select 5")
	}
	if !selected([]string{"1a", " 5 "}, "5") {
		t.Error("trimmed name not selected")
	}
	if !selected([]string{"10A"}, "10a") {
		t.Error("case-insensitive match failed")
	}
	if selected([]string{"5"}, "6") {
		t.Error("wrong figure selected")
	}
}
