// Command experiments regenerates the paper's evaluation figures (§IV).
// Each figure prints the same rows/series the paper reports, annotated with
// the paper's headline numbers for side-by-side comparison.
//
// Usage:
//
//	experiments -fig all              # every figure at experiment scale
//	experiments -fig 5                # just the Fig 5 peak-workload series
//	experiments -fig 7 -fast          # quicker (less accurate) model fits
//	experiments -fig all -paper       # full 599k-particle paper scale (slow)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"picpredict"
	"picpredict/internal/cli"
	"picpredict/internal/figures"
	"picpredict/internal/resilience"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		fig    = flag.String("fig", "all", "figure: all, 1a, 1b, 5, 6, 7, 8, 9, 10a, 10b, sim, speed, sampling, ablation, mappers, rebalance")
		paper  = flag.Bool("paper", false, "run at the paper's full scale (599,257 particles; slow)")
		fast   = flag.Bool("fast", false, "fast (less accurate) model training")
		np     = flag.Int("np", 0, "override particle count")
		steps  = flag.Int("steps", 0, "override iteration count")
		report = flag.String("report", "", "write a markdown report of every experiment to this file")

		rebalReport = flag.String("rebalance-report", "", "write a markdown report of the dynamic load-balancing study to this file")

		metricsPath = flag.String("metrics", "", "write a JSON run manifest (timings, counters, artefact checksums) to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	ctx, stop := cli.Context()
	defer stop()

	run, err := cli.StartRun("experiments", *metricsPath, *pprofAddr, os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	run.SetConfig(map[string]any{
		"fig": *fig, "paper": *paper, "fast": *fast, "np": *np, "steps": *steps,
	})

	spec := picpredict.HeleShaw()
	if *paper {
		spec = picpredict.HeleShawFull()
	}
	if *np > 0 {
		spec = spec.WithParticles(*np)
	}
	if *steps > 0 {
		spec = spec.WithSteps(*steps)
	}
	runner := figures.NewRunner(figures.Config{Spec: spec, FastModels: *fast}, os.Stdout)

	if *rebalReport != "" {
		if err := resilience.WriteFileAtomic(*rebalReport, runner.RebalanceReport); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rebalance report written to %s\n", *rebalReport)
		run.Reg.StageDone("rebalance-report")
		run.Artefact(*rebalReport)
		if err := run.Finish(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *report != "" {
		// Reports are slow to regenerate; write atomically so an interrupted
		// run cannot clobber the previous report with a torn file.
		if err := resilience.WriteFileAtomic(*report, runner.Report); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *report)
		run.Reg.StageDone("report")
		run.Artefact(*report)
		if err := run.Finish(); err != nil {
			log.Fatal(err)
		}
		return
	}

	type figFn struct {
		name string
		run  func() error
	}
	all := []figFn{
		{"1a", func() error { _, err := runner.Fig1a(4096); return err }},
		{"1b", func() error { _, err := runner.Fig1b(nil); return err }},
		{"5", func() error { _, err := runner.Fig5(); return err }},
		{"6", func() error { _, err := runner.Fig6(); return err }},
		{"7", func() error { _, err := runner.Fig7(); return err }},
		{"8", func() error { _, err := runner.Fig8(); return err }},
		{"9", func() error { _, err := runner.Fig9(); return err }},
		{"10a", func() error { _, err := runner.Fig10a(nil); return err }},
		{"10b", func() error { _, err := runner.Fig10b(nil); return err }},
		{"sim", func() error { _, err := runner.Simulate(); return err }},
		{"speed", func() error { _, err := runner.Speed(4176); return err }},
		{"sampling", func() error { _, err := runner.Sampling(nil); return err }},
		{"ablation", func() error { _, err := runner.SplitAblation(); return err }},
		{"mappers", func() error { _, err := runner.Mappers(); return err }},
		{"rebalance", func() error { _, err := runner.Rebalance(nil); return err }},
	}

	want := strings.Split(*fig, ",")
	ran := 0
	for _, f := range all {
		if !selected(want, f.name) {
			continue
		}
		// Figures are independent; an interrupt finishes the one in flight
		// and skips the rest.
		if ctx.Err() != nil {
			log.Fatalf("interrupted after %d experiment(s)", ran)
		}
		if err := f.run(); err != nil {
			log.Fatalf("fig %s: %v", f.name, err)
		}
		run.Reg.StageDone("fig-" + f.name)
		ran++
	}
	if ran == 0 {
		log.Fatalf("no figure matches %q; use -fig all or one of 1a,1b,5,6,7,8,9,10a,10b,sim,speed,sampling,ablation,mappers,rebalance", *fig)
	}
	fmt.Printf("\nregenerated %d experiment(s); see EXPERIMENTS.md for paper-vs-measured records\n", ran)
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
}

func selected(want []string, name string) bool {
	for _, w := range want {
		w = strings.TrimSpace(w)
		if w == "all" || strings.EqualFold(w, name) {
			return true
		}
	}
	return false
}
