package picpredict

import (
	"context"
	"errors"
	"fmt"
	"io"

	"picpredict/internal/geom"
	"picpredict/internal/obs"
	"picpredict/internal/pipeline"
	"picpredict/internal/resilience"
	"picpredict/internal/scenario"
	"picpredict/internal/trace"
)

// FusedOptions configures RunFused, the single-process pipeline that runs
// the PIC application, the Dynamic Workload Generator, the Model Generator,
// and the Simulation Platform end-to-end with no intermediate artefact
// files.
type FusedOptions struct {
	// Ranks lists the processor counts to predict; the one simulation pass
	// feeds a workload builder per entry.
	Ranks []int
	// Mapping selects the mapping algorithm (default MappingBin).
	Mapping MappingKind
	// FilterRadius is the projection filter size; zero takes the
	// scenario's.
	FilterRadius float64
	// RelaxedBins and MidpointSplit tune bin mapping as in
	// WorkloadOptions.
	RelaxedBins   bool
	MidpointSplit bool
	// Rebalance is a dynamic load-balancing policy spec ("periodic:K",
	// "threshold:F", "diffusion:F[/R]"; empty or "none" keeps the static
	// decomposition). Requires MappingElement when non-none.
	Rebalance string
	// Workers sets the workload generator's parallel-fill worker count
	// (0/1 serial).
	Workers int
	// Depth is the bounded-channel depth between the simulation and the
	// workload builders; 0 streams synchronously. Checkpointed runs are
	// always synchronous regardless.
	Depth int

	// Train configures the Model Generator (trained concurrently with the
	// simulation).
	Train TrainOptions

	// TotalElements, GridN, FilterElements and Machine configure the
	// Simulation Platform; zero values derive from the scenario
	// (TotalElements, GridN) or default to one element width
	// (FilterElements) and Quartz (Machine).
	TotalElements  int
	GridN          float64
	FilterElements float64
	Machine        *MachineSpec
	// Noise is the synthetic-testbed noise of the accuracy evaluation
	// (default 0.105, the §IV setting).
	Noise float64

	// TraceOut, when set, also streams the trace to this file — fused
	// prediction plus a durable artefact in one pass.
	TraceOut string
	// CheckpointEvery enables crash recovery: the run checkpoints every N
	// iterations (and on context cancellation), and Resume continues a
	// killed run. Checkpointing requires TraceOut — the trace is the
	// durable state a resumed run replays to rebuild its builders.
	CheckpointEvery int
	CheckpointPath  string // default TraceOut+".ckpt"
	Resume          bool

	// Obs, when non-nil, instruments the run: the registry collects the
	// end-to-end stage breakdown (setup, stream, workloads, train-wait,
	// predict — consecutive segments that partition the wall time), the
	// pipeline's per-stage frame latency and channel depth, the
	// generators' fill times, and the simulator's per-interval
	// simulated-vs-wall telemetry. Nil runs are unobserved at effectively
	// zero cost.
	Obs *obs.Registry

	// afterFrame, when set, runs after every streamed frame with the
	// number of frames seen so far (including replayed ones) — a test
	// hook for deterministic mid-flight cancellation.
	afterFrame func(frames int)
}

// FusedResult is RunFused's output: one prediction (and workload, and
// accuracy evaluation) per requested rank count, plus the trained models.
type FusedResult struct {
	// Ranks echoes the requested processor counts.
	Ranks []int
	// Workloads[i] is the workload generated for Ranks[i].
	Workloads []*Workload
	// Predictions[i] is the BSP prediction for Ranks[i].
	Predictions []*Prediction
	// Accuracy[i] is the per-kernel MAPE evaluation for Ranks[i].
	Accuracy []map[string]float64
	// Models are the fitted kernel models.
	Models Models
	// Frames is the number of trace frames streamed through the builders.
	Frames int
}

// RunFused executes the whole prediction framework in one process and one
// pass: the PIC simulation streams frames directly into per-rank workload
// builders (kernel models train concurrently), and the finished workloads
// replay through the BSP simulator. Positions are quantised through the
// trace format's float32 on the way, so the reported totals are
// bit-identical to the file-at-rest flow (picgen → wlgen/predict) — without
// writing any intermediate file unless TraceOut asks for one.
//
// Cancelling ctx stops the run between iterations; with checkpointing
// enabled a final checkpoint is written first, so a Resume run picks up
// where the cancelled one stopped (replaying the durable trace prefix
// through fresh builders, then continuing live).
func RunFused(ctx context.Context, sc Scenario, opts FusedOptions) (*FusedResult, error) {
	spec := sc.spec
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("picpredict: %w", err)
	}
	if len(opts.Ranks) == 0 {
		return nil, errors.New("picpredict: RunFused needs at least one rank count")
	}
	if opts.Mapping == "" {
		opts.Mapping = MappingBin
	}
	if opts.FilterRadius == 0 {
		opts.FilterRadius = spec.FilterRadius
	}
	checkpointing := opts.CheckpointEvery > 0 || opts.Resume
	if checkpointing && opts.TraceOut == "" {
		return nil, errors.New("picpredict: fused checkpointing requires TraceOut — the trace is the durable state a resume replays")
	}

	// One workload builder per rank count: a single simulation pass
	// fans out to every requested configuration.
	builders := make([]*pipeline.GeneratorBuilder, len(opts.Ranks))
	for i, r := range opts.Ranks {
		b, err := pipeline.NewGeneratorBuilder(pipeline.MapperSpec{
			Kind:          string(opts.Mapping),
			Ranks:         r,
			FilterRadius:  opts.FilterRadius,
			RelaxedBins:   opts.RelaxedBins,
			MidpointSplit: opts.MidpointSplit,
			Rebalance:     opts.Rebalance,
			Domain:        spec.Domain,
			Elements:      spec.Elements,
			N:             spec.N,
		}, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("picpredict: %w", err)
		}
		b.SetObs(opts.Obs)
		builders[i] = b
	}
	res := &FusedResult{Ranks: opts.Ranks}
	sinks := make([]pipeline.FrameSink, 0, len(builders)+1)
	for _, b := range builders {
		sinks = append(sinks, b)
	}
	sinks = append(sinks, pipeline.SinkFunc(func(int, []geom.Vec3) error {
		res.Frames++
		if opts.afterFrame != nil {
			opts.afterFrame(res.Frames)
		}
		return nil
	}))

	// The Model Generator is workload-independent; train it while the
	// simulation streams.
	type trained struct {
		models Models
		err    error
	}
	trainCh := make(chan trained, 1)
	go func() {
		m, err := TrainModels(opts.Train)
		trainCh <- trained{models: m, err: err}
	}()

	// Stage clock: consecutive StageDone calls partition the run's wall
	// time, so the manifest's stage nanos sum to (within scheduling jitter)
	// the elapsed time.
	opts.Obs.StageDone("setup")

	ctx = obs.With(ctx, opts.Obs)
	if err := runFusedStream(ctx, spec, opts, checkpointing, sinks); err != nil {
		return nil, err
	}
	opts.Obs.StageDone("stream")

	res.Workloads = make([]*Workload, len(builders))
	for i, b := range builders {
		inner, err := b.Finish()
		if err != nil {
			return nil, fmt.Errorf("picpredict: %w", err)
		}
		res.Workloads[i] = &Workload{
			inner:        inner,
			binsPerFrame: b.BinsPerFrame,
			opts: WorkloadOptions{
				Ranks:         opts.Ranks[i],
				Mapping:       opts.Mapping,
				FilterRadius:  opts.FilterRadius,
				RelaxedBins:   opts.RelaxedBins,
				MidpointSplit: opts.MidpointSplit,
				Rebalance:     opts.Rebalance,
				Workers:       opts.Workers,
			},
		}
	}
	opts.Obs.StageDone("workloads")

	t := <-trainCh
	if t.err != nil {
		return nil, t.err
	}
	res.Models = t.models
	opts.Obs.StageDone("train-wait")

	platform, err := newFusedPlatform(sc, t.models, opts)
	if err != nil {
		return nil, err
	}
	noise := opts.Noise
	if noise == 0 {
		noise = 0.105
	}
	res.Predictions = make([]*Prediction, len(opts.Ranks))
	res.Accuracy = make([]map[string]float64, len(opts.Ranks))
	for i, wl := range res.Workloads {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pred, err := platform.SimulateBSP(wl)
		if err != nil {
			return nil, err
		}
		acc, err := platform.KernelAccuracy(wl, noise, int64(7+i))
		if err != nil {
			return nil, err
		}
		res.Predictions[i] = pred
		res.Accuracy[i] = acc
	}
	opts.Obs.StageDone("predict")
	return res, nil
}

// runFusedStream drives the simulation through the sinks in whichever of
// the three wiring modes opts selects: checkpointed (durable trace +
// resume), trace-writing (atomic file alongside the fused sinks), or pure
// in-memory.
func runFusedStream(ctx context.Context, spec scenario.Spec, opts FusedOptions, checkpointing bool, sinks []pipeline.FrameSink) error {
	if checkpointing {
		tr, err := pipeline.NewTraceRun(spec, pipeline.TraceRunOptions{
			Out:             opts.TraceOut,
			CheckpointPath:  opts.CheckpointPath,
			CheckpointEvery: opts.CheckpointEvery,
			Resume:          opts.Resume,
		})
		if err != nil {
			return fmt.Errorf("picpredict: %w", err)
		}
		// A resumed run rebuilds builder state by replaying the intact
		// trace prefix — workload generation is deterministic from the
		// trace, so no generator state needs checkpointing.
		if err := tr.ReplayPrefix(ctx, sinks...); err != nil {
			return fmt.Errorf("picpredict: %w", err)
		}
		if err := tr.Run(ctx, sinks...); err != nil {
			if ctx.Err() != nil {
				return err
			}
			return fmt.Errorf("picpredict: %w", err)
		}
		return nil
	}

	sim, err := spec.NewSim()
	if err != nil {
		return fmt.Errorf("picpredict: %w", err)
	}
	src := &pipeline.SimSource{Sim: sim}
	if opts.TraceOut != "" {
		err := resilience.WriteFileAtomic(opts.TraceOut, func(w io.Writer) error {
			tw, err := trace.NewWriter(w, trace.Header{
				NumParticles: spec.NumParticles,
				SampleEvery:  spec.SampleEvery,
				Domain:       spec.Domain,
			})
			if err != nil {
				return err
			}
			all := append([]pipeline.FrameSink{pipeline.WriterSink{W: tw}}, sinks...)
			if err := pipeline.StreamConcurrent(ctx, src, opts.Depth, all...); err != nil {
				return err
			}
			return tw.Flush()
		})
		if err != nil && ctx.Err() != nil {
			return err
		}
		if err != nil {
			return fmt.Errorf("picpredict: %w", err)
		}
		return nil
	}
	if err := pipeline.StreamConcurrent(ctx, src, opts.Depth, sinks...); err != nil {
		if ctx.Err() != nil {
			return err
		}
		return fmt.Errorf("picpredict: %w", err)
	}
	return nil
}

// newFusedPlatform assembles the Simulation Platform with scenario-derived
// defaults.
func newFusedPlatform(sc Scenario, models Models, opts FusedOptions) (*Platform, error) {
	totalEl := opts.TotalElements
	if totalEl == 0 {
		totalEl = sc.NumElements()
	}
	gridN := opts.GridN
	if gridN == 0 {
		gridN = float64(sc.GridN())
	}
	return assemblePlatform(models, totalEl, gridN, opts.FilterElements, opts.Machine, opts.Obs)
}

// assemblePlatform is the shared Simulation Platform constructor behind the
// fused and serving flows: FilterElements defaults to one element width and
// Machine to Quartz; TotalElements and GridN must already be resolved.
func assemblePlatform(models Models, totalEl int, gridN, filterEl float64, machine *MachineSpec, reg *obs.Registry) (*Platform, error) {
	if filterEl == 0 {
		filterEl = 1
	}
	if machine == nil {
		q := QuartzMachine()
		machine = &q
	}
	return NewPlatform(models, PlatformOptions{
		TotalElements: totalEl,
		N:             gridN,
		Filter:        filterEl,
		Machine:       machine,
		Obs:           reg,
	})
}

// QueryOptions configures one prediction query against an already-loaded
// artefact — the serving-path analogue of FusedOptions, shaped for a
// long-running process that amortises trace loading and model training
// across many queries.
type QueryOptions struct {
	// Workload configures the Dynamic Workload Generator for this query
	// (ranks, mapping, filter radius, ...). Ignored by PredictWorkload,
	// which replays a pre-generated workload.
	Workload WorkloadOptions
	// TotalElements and GridN configure the Simulation Platform; both must
	// be positive (a server fills them from its configuration defaults).
	TotalElements int
	GridN         float64
	// FilterElements defaults to one element width; Machine to Quartz.
	FilterElements float64
	Machine        *MachineSpec
	// Obs, when non-nil, instruments workload generation and the
	// simulator exactly as in the fused flow.
	Obs *obs.Registry
}

// PredictFromTrace is the reusable predict-from-artefact entry point: one
// workload generation plus one BSP replay for a single configuration over a
// trace that is already in memory. The trace is only read, and trained
// Models are immutable after fitting, so any number of PredictFromTrace
// calls may run concurrently over the same trace and models — the property
// the serving layer's worker pool relies on.
func PredictFromTrace(ctx context.Context, tr *Trace, models Models, q QueryOptions) (*Workload, *Prediction, error) {
	wl, err := tr.GenerateWorkloadContext(obs.With(ctx, q.Obs), q.Workload)
	if err != nil {
		return nil, nil, err
	}
	pred, err := PredictWorkload(models, wl, q)
	if err != nil {
		return nil, nil, err
	}
	return wl, pred, nil
}

// PredictWorkload replays an existing workload (generated in-process or
// loaded from a wlgen -save artefact) through the BSP simulator under q's
// platform configuration.
func PredictWorkload(models Models, wl *Workload, q QueryOptions) (*Prediction, error) {
	if q.TotalElements <= 0 {
		return nil, fmt.Errorf("picpredict: PredictWorkload needs a positive TotalElements, got %d", q.TotalElements)
	}
	if q.GridN <= 0 {
		return nil, fmt.Errorf("picpredict: PredictWorkload needs a positive GridN, got %g", q.GridN)
	}
	platform, err := assemblePlatform(models, q.TotalElements, q.GridN, q.FilterElements, q.Machine, q.Obs)
	if err != nil {
		return nil, err
	}
	return platform.SimulateBSP(wl)
}
