// Package picpredict is a trace-driven performance prediction framework for
// irregular Particle-in-Cell (PIC) workloads, reproducing Chenna et al.,
// "Scalable Performance Prediction of Irregular Workloads in Multi-Phase
// Particle-in-Cell Applications" (IPDPS 2021).
//
// The framework predicts how a PIC application behaves on any number of
// processors from a single particle trace:
//
//	trace ──► Dynamic Workload Generator ──► per-rank workload matrices
//	                                             │
//	kernel benchmarks ──► Model Generator ───────┼──► Simulation Platform
//	                                             ▼
//	                                  performance prediction
//
// Typical use:
//
//	spec := picpredict.HeleShaw()                  // §IV-A case study
//	tr, _ := spec.Run()                            // run the PIC app, sample a trace
//	wl, _ := tr.GenerateWorkload(picpredict.WorkloadOptions{
//		Ranks:        1044,
//		Mapping:      picpredict.MappingBin,
//		FilterRadius: spec.FilterRadius(),
//	})
//	fmt.Println(wl.Peak(), wl.Utilization())
//
//	models, _ := picpredict.TrainModels(picpredict.TrainOptions{})
//	platform, _ := picpredict.NewPlatform(models, picpredict.PlatformOptions{
//		TotalElements: spec.NumElements(), N: 5, Filter: 2,
//	})
//	pred, _ := platform.Simulate(wl)
//	fmt.Println(pred.Total)
//
// Everything is deterministic under fixed seeds; no external dependencies.
package picpredict

import (
	"fmt"
	"io"

	"picpredict/internal/geom"
	"picpredict/internal/scenario"
)

// Scenario is a runnable PIC case study: domain, mesh, particles, gas flow,
// and solver parameters. Construct one with HeleShaw, HeleShawFull,
// UniformScenario or GaussianScenario, then customise with the With*
// methods (value semantics: each returns a modified copy).
type Scenario struct {
	spec scenario.Spec
}

// HeleShaw returns the experiment-scale Hele-Shaw case study (§IV-A): a
// dense particle bed dispersed by a diaphragm-burst shock in a thin cell.
func HeleShaw() Scenario { return Scenario{spec: scenario.HeleShaw()} }

// HeleShawFull returns the paper-scale Hele-Shaw study: 599,257 particles,
// 216,225 spectral elements, 20,000 iterations. Running it takes minutes.
func HeleShawFull() Scenario { return Scenario{spec: scenario.HeleShawPaper()} }

// UniformScenario returns a uniformly-seeded baseline with no initial
// clustering.
func UniformScenario() Scenario { return Scenario{spec: scenario.Uniform()} }

// ShockTubeScenario returns a Sod-style shock tube whose gas phase is the
// built-in compressible Euler solver: a shock sweeps a particle curtain
// downstream, producing migration-dominated communication matrices.
func ShockTubeScenario() Scenario { return Scenario{spec: scenario.ShockTube()} }

// GaussianScenario returns a statically-clustered scenario with no flow.
func GaussianScenario() Scenario { return Scenario{spec: scenario.GaussianCluster()} }

// FromSpec wraps a raw scenario spec in the facade type. Only callable
// from inside the module (scenario is an internal package); the cmd front
// ends use it to hand an already-customised spec to RunFused.
func FromSpec(spec scenario.Spec) Scenario { return Scenario{spec: spec} }

// WithParticles sets the particle count N_p.
func (s Scenario) WithParticles(n int) Scenario { s.spec.NumParticles = n; return s }

// WithSteps sets the iteration count of a full run.
func (s Scenario) WithSteps(n int) Scenario { s.spec.Steps = n; return s }

// WithSampleEvery sets the trace sampling interval in iterations.
func (s Scenario) WithSampleEvery(n int) Scenario { s.spec.SampleEvery = n; return s }

// WithSeed sets the random seed; equal seeds give identical runs.
func (s Scenario) WithSeed(seed int64) Scenario { s.spec.Seed = seed; return s }

// WithElements sets the spectral-element grid dimensions.
func (s Scenario) WithElements(ex, ey, ez int) Scenario {
	s.spec.Elements = [3]int{ex, ey, ez}
	return s
}

// WithFilterRadius sets the projection filter size (absolute length). It is
// both the ghost-particle influence radius and the threshold bin size of
// bin-based mapping (§IV-D).
func (s Scenario) WithFilterRadius(r float64) Scenario { s.spec.FilterRadius = r; return s }

// WithBurst overrides the diaphragm-burst strength and the shock arrival
// delay (the time before the flow reaches the particle bed). Zero amp
// disables the flow.
func (s Scenario) WithBurst(amp, delay float64) Scenario {
	s.spec.BurstAmp = amp
	s.spec.BurstDelay = delay
	return s
}

// WithWorkers sets the PIC solver's worker-goroutine count (0 or 1 runs
// serially). Traces are bit-identical for any value.
func (s Scenario) WithWorkers(n int) Scenario { s.spec.Workers = n; return s }

// WithCollisions enables soft-sphere particle collisions with the given
// stiffness.
func (s Scenario) WithCollisions(stiffness float64) Scenario {
	s.spec.Collisions = stiffness > 0
	s.spec.Stiffness = stiffness
	return s
}

// Name returns the scenario label.
func (s Scenario) Name() string { return s.spec.Name }

// NumParticles returns N_p.
func (s Scenario) NumParticles() int { return s.spec.NumParticles }

// NumElements returns the total spectral element count.
func (s Scenario) NumElements() int {
	return s.spec.Elements[0] * s.spec.Elements[1] * s.spec.Elements[2]
}

// Elements returns the element grid dimensions (Ex, Ey, Ez).
func (s Scenario) Elements() [3]int { return s.spec.Elements }

// GridN returns the grid resolution within one element.
func (s Scenario) GridN() int { return s.spec.N }

// Steps returns the iteration count of a full run.
func (s Scenario) Steps() int { return s.spec.Steps }

// SampleEvery returns the trace sampling interval.
func (s Scenario) SampleEvery() int { return s.spec.SampleEvery }

// FilterRadius returns the projection filter size (absolute length).
func (s Scenario) FilterRadius() float64 { return s.spec.FilterRadius }

// FilterInElements returns the projection filter size expressed in element
// widths — the unit the kernel performance models use.
func (s Scenario) FilterInElements() float64 {
	w := s.spec.Domain.Extent().X / float64(s.spec.Elements[0])
	if w <= 0 {
		return 0
	}
	return s.spec.FilterRadius / w
}

// Validate reports the first invalid scenario field.
func (s Scenario) Validate() error { return s.spec.Validate() }

// Run executes the PIC application and returns the sampled trace in
// memory.
func (s Scenario) Run() (*Trace, error) {
	res, err := s.spec.Run()
	if err != nil {
		return nil, fmt.Errorf("picpredict: running scenario %s: %w", s.spec.Name, err)
	}
	return &Trace{
		domain:      res.Spec.Domain,
		np:          res.Np(),
		sampleEvery: s.spec.SampleEvery,
		iterations:  res.Iterations,
		positions:   res.Positions,
		mesh:        meshParams{elements: s.spec.Elements, n: s.spec.N},
	}, nil
}

// WriteTrace executes the PIC application, streaming the trace to w in the
// binary trace format (readable later with ReadTrace).
func (s Scenario) WriteTrace(w io.Writer) error {
	if _, err := s.spec.WriteTrace(w); err != nil {
		return fmt.Errorf("picpredict: writing trace for %s: %w", s.spec.Name, err)
	}
	return nil
}

// meshParams carries the element-grid shape a trace was produced on, needed
// to rebuild meshes for element-based mapping.
type meshParams struct {
	elements [3]int
	n        int
}

// domainOf converts a geom.AABB to the exported [2][3]float64 form.
func domainOf(b geom.AABB) [2][3]float64 {
	return [2][3]float64{{b.Lo.X, b.Lo.Y, b.Lo.Z}, {b.Hi.X, b.Hi.Y, b.Hi.Z}}
}

// MappingKinds lists every mapping algorithm the Dynamic Workload Generator
// implements, in the §III presentation order.
func MappingKinds() []MappingKind {
	return []MappingKind{MappingElement, MappingBin, MappingHilbert, MappingWeighted, MappingOhHelp}
}

// ParseMappingKind validates a mapping-algorithm name; empty means
// MappingBin (the paper's default). It is the one validation site behind the
// serving layer, the sweep engine, and the cmd front ends.
func ParseMappingKind(s string) (MappingKind, error) {
	switch MappingKind(s) {
	case "":
		return MappingBin, nil
	case MappingElement, MappingBin, MappingHilbert, MappingWeighted, MappingOhHelp:
		return MappingKind(s), nil
	default:
		return "", fmt.Errorf("picpredict: unknown mapping %q (element, bin, hilbert, weighted, ohhelp)", s)
	}
}
